(* The sharded KV service layer: open-loop arrival generation, the
   request router, degraded-mode policies, and the full crash-one-shard
   serve scenario with its determinism and isolation guarantees. *)

open Helpers
module Arrival = Service.Arrival
module Degraded = Service.Degraded
module Serve = Service.Serve
module Ycsb = Workload.Ycsb
module Rng = Sched.Sim_rng

let gen_stream ?(seed = 42) ?(rate = 200.) ?(theta = 0.8) ?(keys = 4096)
    ?(requests = 5000) () =
  Arrival.generate ~seed ~rate_per_mcycle:rate ~theta ~keys ~preset:Ycsb.B
    ~requests

(* --- Arrival generation --- *)

let test_arrival_deterministic () =
  let a = gen_stream () and b = gen_stream () in
  Alcotest.(check bool) "same seed, same times" true (a.Arrival.times = b.Arrival.times);
  Alcotest.(check bool) "same seed, same ranks" true (a.Arrival.ranks = b.Arrival.ranks);
  Alcotest.(check bool) "same seed, same ops" true (a.Arrival.ops = b.Arrival.ops);
  let c = gen_stream ~seed:43 () in
  Alcotest.(check bool) "different seed, different stream" false
    (a.Arrival.times = c.Arrival.times && a.Arrival.ranks = c.Arrival.ranks)

let test_arrival_nondecreasing () =
  let s = gen_stream () in
  let ok = ref true in
  for i = 1 to Array.length s.Arrival.times - 1 do
    if s.Arrival.times.(i) < s.Arrival.times.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "arrival times nondecreasing" true !ok;
  Alcotest.(check bool) "horizon past last arrival" true
    (Arrival.horizon s > s.Arrival.times.(Array.length s.Arrival.times - 1))

(* A Poisson stream at rate R must empirically arrive at ~R: with 20k
   requests the relative standard error is under 1%, so +-10% is a
   deterministic-seed-safe bound. *)
let test_arrival_rate () =
  let rate = 350. in
  let requests = 20_000 in
  let s = gen_stream ~rate ~requests () in
  let horizon = float_of_int (Arrival.horizon s) in
  let empirical = float_of_int requests /. horizon *. 1_000_000. in
  Alcotest.(check bool)
    (Printf.sprintf "empirical rate %.1f within 10%% of %.1f" empirical rate)
    true
    (Float.abs (empirical -. rate) /. rate < 0.10)

let test_arrival_guards () =
  check_raises_invalid "rate 0" (fun () ->
      ignore (gen_stream ~rate:0. () : Arrival.stream));
  check_raises_invalid "keys 0" (fun () ->
      ignore (gen_stream ~keys:0 () : Arrival.stream));
  check_raises_invalid "negative requests" (fun () ->
      ignore (gen_stream ~requests:(-1) () : Arrival.stream));
  check_raises_invalid "theta 1" (fun () ->
      ignore (gen_stream ~theta:1. () : Arrival.stream))

(* --- Router --- *)

let test_route () =
  let shards = 7 in
  let seen = Array.make shards 0 in
  for i = 0 to 9999 do
    let s = Arrival.route ~shards (Workload.Key_space.h_key i) in
    Alcotest.(check bool) "route in range" true (s >= 0 && s < shards);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun s n ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d owns a fair share (%d)" s n)
        true
        (n > 10000 / shards / 2 && n < 10000 * 2 / shards))
    seen;
  Alcotest.(check int) "route is a pure function" (Arrival.route ~shards 12345)
    (Arrival.route ~shards 12345);
  check_raises_invalid "0 shards" (fun () ->
      ignore (Arrival.route ~shards:0 1 : int))

(* --- Zipf: theta = 0 uniform degenerate case (and the guard) --- *)

let test_zipf_theta_zero_uniform () =
  let n = 16 in
  let z = Ycsb.Zipf.create ~theta:0. ~n () in
  let rng = Rng.create ~seed:5 in
  let counts = Array.make n 0 in
  let draws = 16_000 in
  for _ = 1 to draws do
    let r = Ycsb.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  let expected = draws / n in
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d near uniform (%d vs %d)" i c expected)
        true
        (c > expected / 2 && c < expected * 2))
    counts;
  check_raises_invalid "theta = 1 rejected" (fun () ->
      ignore (Ycsb.Zipf.create ~theta:1.0 ~n:10 () : Ycsb.Zipf.t));
  check_raises_invalid "negative theta rejected" (fun () ->
      ignore (Ycsb.Zipf.create ~theta:(-0.1) ~n:10 () : Ycsb.Zipf.t))

(* Rank monotonicity: for any skew and seed, low ranks must be drawn at
   least as often as high ranks in aggregate — the head outweighs the
   tail, and rank 0 beats the last rank outright for real skews. *)
let test_zipf_rank_monotone =
  qcheck ~count:60 "zipf: head outweighs tail for any theta"
    QCheck2.Gen.(pair (int_range 1 10_000) (float_range 0.3 0.95))
    (fun (seed, theta) ->
      let n = 64 in
      let z = Ycsb.Zipf.create ~theta ~n () in
      let rng = Rng.create ~seed in
      let counts = Array.make n 0 in
      for _ = 1 to 4000 do
        let r = Ycsb.Zipf.sample z rng in
        counts.(r) <- counts.(r) + 1
      done;
      let quarter = n / 4 in
      let sum a b = Array.fold_left ( + ) 0 (Array.sub counts a (b - a)) in
      counts.(0) > counts.(n - 1)
      && sum 0 quarter >= sum (n - quarter) n)

(* --- Degraded-mode parsing --- *)

let test_degraded_of_string () =
  let ok s v =
    match Degraded.of_string s with
    | Ok got -> Alcotest.(check string) s (Degraded.to_string v) (Degraded.to_string got)
    | Error e -> Alcotest.failf "%s: unexpected error %s" s e
  in
  ok "shed" Degraded.Shed;
  ok "queue" (Degraded.Queue { deadline = Degraded.default_deadline });
  ok "queue:12345" (Degraded.Queue { deadline = 12345 });
  ok "retry"
    (Degraded.Retry
       { backoff = Degraded.default_backoff; max_retries = Degraded.default_max_retries });
  ok "retry:100:3" (Degraded.Retry { backoff = 100; max_retries = 3 });
  let err s =
    match Degraded.of_string s with
    | Ok _ -> Alcotest.failf "%s: expected an error" s
    | Error _ -> ()
  in
  err "drop";
  err "queue:0";
  err "queue:xyz";
  err "retry:10:0:9"

(* --- The service --- *)

let tiny_config =
  {
    Serve.smoke_config with
    Serve.shards = 3;
    seed = 13;
    keys = 2048;
    requests = 900;
    rate_per_mcycle = 250.;
    crash_shard = Some 1;
    n_buckets = Some 512;
    windows = 6;
  }

let test_serve_deterministic () =
  let a = Serve.run ~jobs:1 tiny_config in
  let b = Serve.run ~jobs:3 tiny_config in
  let c = Serve.run ~jobs:3 tiny_config in
  Alcotest.(check string) "jobs-invariant report" (Serve.render a) (Serve.render b);
  Alcotest.(check string) "repeat-invariant report" (Serve.render b) (Serve.render c)

let shard_witness (s : Serve.shard_report) =
  ( s.Serve.served,
    s.Serve.shed,
    s.Serve.timed_out,
    s.Serve.steps,
    s.Serve.sim_cycles,
    s.Serve.elapsed_cycles,
    s.Serve.outcome )

(* The crash parameters never reach the untouched shards' cells, so a
   neighbour's crash must not change one bit of their simulation. *)
let test_serve_blast_radius () =
  let crash = Serve.run ~jobs:2 tiny_config in
  let quiet = Serve.run ~jobs:2 { tiny_config with Serve.crash_shard = None } in
  List.iter
    (fun s ->
      if Some s <> tiny_config.Serve.crash_shard then begin
        Alcotest.(check bool)
          (Printf.sprintf "shard %d byte-identical with/without neighbour crash" s)
          true
          (shard_witness crash.Serve.shards.(s) = shard_witness quiet.Serve.shards.(s))
      end)
    [ 0; 1; 2 ];
  Alcotest.(check string) "untouched shard outcome" "ok"
    crash.Serve.shards.(0).Serve.outcome;
  Alcotest.(check string) "victim recovered" "crashed+recovered"
    crash.Serve.shards.(1).Serve.outcome

let test_serve_recovery_and_ledger () =
  let r = Serve.run ~jobs:2 tiny_config in
  let victim = r.Serve.shards.(1) in
  (match victim.Serve.recovery with
  | None -> Alcotest.fail "victim shard has no recovery report"
  | Some rr ->
      Alcotest.(check bool) "t_down < t_up" true (rr.Serve.t_down < rr.Serve.t_up);
      Alcotest.(check bool) "recovery took cycles" true (rr.Serve.recovery_cycles > 0);
      (match rr.Serve.dl with
      | Some v ->
          Alcotest.(check bool) "recovered shard durably linearizable" true
            (Check.Dl.is_explained v)
      | None -> Alcotest.failf "DL check skipped: %s" rr.Serve.dl_note));
  (* the ledger accounts for every request exactly once *)
  let total f = Array.fold_left (fun a s -> a + f s) 0 r.Serve.shards in
  Alcotest.(check int) "every request accounted" tiny_config.Serve.requests
    (total (fun s -> s.Serve.served + s.Serve.shed + s.Serve.timed_out));
  Alcotest.(check int) "requests partitioned over shards"
    tiny_config.Serve.requests
    (total (fun s -> s.Serve.requests));
  let win_total =
    Array.fold_left (fun a w -> a + w.Serve.total) 0 r.Serve.windows
  in
  Alcotest.(check int) "availability windows cover every request"
    tiny_config.Serve.requests win_total;
  (* every phase of the latency table reports p999 *)
  Alcotest.(check bool) "latency rows present" true (r.Serve.latency <> []);
  List.iter
    (fun l ->
      Alcotest.(check bool)
        (Printf.sprintf "shard %d %s: p50 <= p99 <= p999" l.Serve.l_shard
           l.Serve.l_phase)
        true
        (l.Serve.p50 <= l.Serve.p99 && l.Serve.p99 <= l.Serve.p999))
    r.Serve.latency

let test_serve_shed_and_retry () =
  let run mode = Serve.run ~jobs:2 { tiny_config with Serve.degraded = mode } in
  let shed = run Degraded.Shed in
  let v = shed.Serve.shards.(1) in
  Alcotest.(check bool) "shed mode sheds the outage window" true (v.Serve.shed > 0);
  Alcotest.(check int) "shed mode never times out" 0 v.Serve.timed_out;
  let retry = run (Degraded.Retry { backoff = 50_000; max_retries = 8 }) in
  let v = retry.Serve.shards.(1) in
  Alcotest.(check bool) "retry mode retries" true (v.Serve.retry_attempts > 0);
  Alcotest.(check int) "retry with ample budget sheds nothing" 0 v.Serve.shed;
  (* a hopeless retry budget must time requests out instead *)
  let starved = run (Degraded.Retry { backoff = 1; max_retries = 1 }) in
  let v = starved.Serve.shards.(1) in
  Alcotest.(check bool) "starved retry budget times out" true (v.Serve.timed_out > 0)

let test_serve_guards () =
  check_raises_invalid "0 shards" (fun () ->
      ignore (Serve.run { tiny_config with Serve.shards = 0 } : Serve.report));
  check_raises_invalid "crash shard out of range" (fun () ->
      ignore (Serve.run { tiny_config with Serve.crash_shard = Some 9 } : Serve.report));
  check_raises_invalid "0 windows" (fun () ->
      ignore (Serve.run { tiny_config with Serve.windows = 0 } : Serve.report))

(* --- p999 in the YCSB sweep table (satellite of this PR) --- *)

let test_ycsb_table_p999 () =
  let _, _, rows = Workload.Sweeps.ycsb_table ~iterations:25 ~records:128 ~jobs:1 Ycsb.B in
  List.iter
    (fun row ->
      Alcotest.(check int) "row carries p50, p95, p99 and p999" 6
        (List.length row))
    rows

let suite =
  ( "service",
    [
      case "arrival: deterministic per seed" test_arrival_deterministic;
      case "arrival: times nondecreasing" test_arrival_nondecreasing;
      case "arrival: empirical rate within 10%" test_arrival_rate;
      case "arrival: argument guards" test_arrival_guards;
      case "router: range, balance, purity" test_route;
      case "zipf: theta=0 is uniform" test_zipf_theta_zero_uniform;
      test_zipf_rank_monotone;
      case "degraded: parser round-trips" test_degraded_of_string;
      slow_case "serve: byte-identical across jobs and repeats"
        test_serve_deterministic;
      slow_case "serve: neighbour crash leaves other shards bit-identical"
        test_serve_blast_radius;
      slow_case "serve: recovery report, DL verdict, ledger accounting"
        test_serve_recovery_and_ledger;
      slow_case "serve: shed and retry degraded modes" test_serve_shed_and_retry;
      case "serve: config guards" test_serve_guards;
      case "sweeps: ycsb table reports p999" test_ycsb_table_p999;
    ] )
