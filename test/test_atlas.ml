(* Tests for the Atlas-like runtime: log entry codec, the undo-log ring
   buffers with their sentinel discipline, OCS tracking, dependency
   cascades, pruning, and end-to-end crash rollback. *)

open Helpers
module Mode = Atlas.Mode
module Log_entry = Atlas.Log_entry
module Undo_log = Atlas.Undo_log
module Rt = Atlas.Runtime
module Recovery = Atlas.Recovery
module Heap_gc = Pheap.Heap_gc
module Kind = Pheap.Kind

(* --- Mode --- *)

let test_mode_strings () =
  List.iter
    (fun m ->
      match Mode.of_string (Mode.to_string m) with
      | Ok m' -> Alcotest.(check bool) "roundtrip" true (m = m')
      | Error e -> Alcotest.fail e)
    Mode.all;
  Alcotest.(check bool) "unknown rejected" true
    (Result.is_error (Mode.of_string "what"))

let test_mode_flags () =
  Alcotest.(check (list (pair bool bool)))
    "logs/flushes per mode"
    [ (false, false); (true, false); (true, true); (true, true) ]
    (List.map (fun m -> (Mode.logs m, Mode.flushes m)) Mode.all);
  Alcotest.(check (list bool)) "eager data flush only in Log_flush"
    [ false; false; true; false ]
    (List.map Mode.eager_data_flush Mode.all);
  Alcotest.(check (list bool)) "deferred only in Log_flush_async"
    [ false; false; false; true ]
    (List.map Mode.deferred_durability Mode.all)

(* --- Log_entry --- *)

let payloads =
  [
    Log_entry.Begin { ocs = 42 };
    Log_entry.Update { addr = 8192; old = -77L };
    Log_entry.Dep { on_ocs = 3; mutex = 9 };
    Log_entry.Commit { ocs = 42 };
  ]

let test_entry_roundtrip () =
  List.iteri
    (fun i payload ->
      let words = Array.make 8 0L in
      let store a v = words.(a / 8) <- v in
      let load a = words.(a / 8) in
      let e = { Log_entry.seq = 1000 + i; tid = 5; payload } in
      Log_entry.write store ~at:0 e;
      match Log_entry.read load ~at:0 with
      | Some e' ->
          Alcotest.(check string) "same entry"
            (Format.asprintf "%a" Log_entry.pp e)
            (Format.asprintf "%a" Log_entry.pp e')
      | None -> Alcotest.fail "decode failed")
    payloads

let test_entry_rejects_garbage () =
  let load _ = 0L in
  Alcotest.(check bool) "zeros invalid" true
    (Option.is_none (Log_entry.read load ~at:0));
  (* Flip one payload bit after encoding: checksum must catch it. *)
  let words = Array.make 4 0L in
  let store a v = words.(a / 8) <- v in
  Log_entry.write store ~at:0
    { Log_entry.seq = 7; tid = 0; payload = Log_entry.Begin { ocs = 1 } };
  words.(2) <- Int64.logxor words.(2) 1L;
  Alcotest.(check bool) "corrupted rejected" true
    (Option.is_none (Log_entry.read (fun a -> words.(a / 8)) ~at:0))

let test_entry_header_written_last () =
  let writes = ref [] in
  let store a _ = writes := a :: !writes in
  Log_entry.write store ~at:64
    { Log_entry.seq = 1; tid = 0; payload = Log_entry.Commit { ocs = 1 } };
  Alcotest.(check int) "header is the final store" 64 (List.hd !writes)

(* --- Undo_log --- *)

let log_region pmem = ((Pmem.config pmem).Config.region_size / 2, 16 * 1024)

let fresh_log ?(threads = 2) () =
  let pmem = small_pmem () in
  let base, size = log_region pmem in
  (pmem, Undo_log.format pmem ~base ~size ~num_threads:threads, base)

let entry seq payload = { Log_entry.seq; tid = 0; payload }

let test_log_format_attach () =
  let pmem, log, base = fresh_log () in
  Alcotest.(check int) "threads" 2 (Undo_log.num_threads log);
  Alcotest.(check bool) "capacity positive" true
    (Undo_log.capacity_entries log > 0);
  let log2 = Undo_log.attach pmem ~base in
  Alcotest.(check int) "attach sees threads" 2 (Undo_log.num_threads log2);
  check_raises_invalid "bad magic" (fun () ->
      ignore (Undo_log.attach pmem ~base:0))

let test_log_append_scan () =
  let _, log, _ = fresh_log () in
  let es =
    [
      entry 1 (Log_entry.Begin { ocs = 1 });
      entry 2 (Log_entry.Update { addr = 64; old = 5L });
      entry 3 (Log_entry.Commit { ocs = 1 });
    ]
  in
  List.iter (fun e -> ignore (Undo_log.append log ~tid:0 e : int)) es;
  let scanned = Undo_log.scan_thread log ~tid:0 in
  Alcotest.(check (list int)) "seqs in order" [ 1; 2; 3 ]
    (List.map (fun (e : Log_entry.t) -> e.Log_entry.seq) scanned);
  Alcotest.(check (list int)) "other thread empty" []
    (List.map (fun (e : Log_entry.t) -> e.Log_entry.seq)
       (Undo_log.scan_thread log ~tid:1));
  Alcotest.(check int) "live entries" 3 (Undo_log.live_entries log ~tid:0)

let test_log_prune_and_wrap () =
  let _, log, _ = fresh_log () in
  let cap = Undo_log.capacity_entries log in
  (* Fill, prune everything, then fill again: the ring must wrap and the
     scan must return only the fresh window. *)
  let last = ref 0 in
  for i = 1 to cap do
    last := Undo_log.append log ~tid:0 (entry i (Log_entry.Begin { ocs = i }))
  done;
  Alcotest.(check int) "full" cap (Undo_log.live_entries log ~tid:0);
  Undo_log.advance_tail log ~tid:0 ~new_tail:(Undo_log.next_slot log !last)
    ~flush:false;
  Alcotest.(check int) "pruned" 0 (Undo_log.live_entries log ~tid:0);
  for i = 1 to 5 do
    ignore
      (Undo_log.append log ~tid:0 (entry (cap + i) (Log_entry.Commit { ocs = i }))
        : int)
  done;
  let scanned = Undo_log.scan_thread log ~tid:0 in
  Alcotest.(check (list int))
    "only fresh entries despite stale valid ones beyond the sentinel"
    [ cap + 1; cap + 2; cap + 3; cap + 4; cap + 5 ]
    (List.map (fun (e : Log_entry.t) -> e.Log_entry.seq) scanned)

let test_log_full () =
  let _, log, _ = fresh_log () in
  let cap = Undo_log.capacity_entries log in
  for i = 1 to cap do
    ignore (Undo_log.append log ~tid:0 (entry i (Log_entry.Begin { ocs = i })) : int)
  done;
  Alcotest.check_raises "ring exhausted" (Undo_log.Log_full { tid = 0 })
    (fun () ->
      ignore
        (Undo_log.append log ~tid:0 (entry 999 (Log_entry.Begin { ocs = 999 }))
          : int))

let test_log_flush_entry_counts () =
  let pmem, log, _ = fresh_log () in
  let before = (Pmem.stats pmem).Nvm.Stats.flushes in
  let at = Undo_log.append log ~tid:0 (entry 1 (Log_entry.Begin { ocs = 1 })) in
  Undo_log.flush_entry log ~entry_addr:at;
  Alcotest.(check bool) "at least one flush + fence" true
    ((Pmem.stats pmem).Nvm.Stats.flushes > before);
  Alcotest.(check bool) "fence issued" true
    ((Pmem.stats pmem).Nvm.Stats.fences > 0)

let test_log_scan_stops_at_torn_entry () =
  let pmem, log, _ = fresh_log () in
  let a1 = Undo_log.append log ~tid:0 (entry 1 (Log_entry.Begin { ocs = 1 })) in
  ignore (Undo_log.append log ~tid:0 (entry 2 (Log_entry.Commit { ocs = 1 })) : int);
  ignore (a1 : int);
  (* Tear the second entry by smashing its payload word. *)
  let second = Undo_log.next_slot log a1 in
  Pmem.store pmem (second + 16) 0xFFL;
  let scanned = Undo_log.scan_thread log ~tid:0 in
  Alcotest.(check (list int)) "scan stops before the torn entry" [ 1 ]
    (List.map (fun (e : Log_entry.t) -> e.Log_entry.seq) scanned)

(* --- Runtime + Recovery, end to end --- *)

(* Build a full environment: heap in the low half, logs in the high half
   of a small device. *)
let make_env ?(mode = Mode.Log_only) ?(threads = 2) () =
  let pmem = desktop_pmem ~region_mib:2 () in
  let size = (Pmem.config pmem).Config.region_size in
  let log_base = size - (256 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  let atlas =
    Rt.create ~mode ~heap ~log_base ~log_size:(256 * 1024)
      ~num_threads:threads ()
  in
  (pmem, heap, atlas, log_base)

let recover_env pmem ~log_base =
  Pmem.recover pmem;
  let heap = Heap.attach pmem ~base:0 ~size:log_base in
  let report = Recovery.run ~heap ~log_base () in
  (heap, report)

let test_store_requires_ocs () =
  let _, heap, atlas, _ = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  check_raises_invalid "store outside section" (fun () ->
      Rt.store_field atlas ctx a 0 1L)

let test_nolog_store_allowed_anywhere () =
  let _, heap, atlas, _ = make_env ~mode:Mode.No_log () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  Rt.store_field atlas ctx a 0 9L;
  Alcotest.check int64 "stored" 9L (Rt.load_field atlas a 0)

let test_first_store_logged_once () =
  let pmem, heap, atlas, _ = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:4 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  let outcome =
    run_threads_s pmem
      [
        (fun sched ->
          let m = Rt.make_mutex atlas sched in
          Rt.lock atlas ctx m;
          Alcotest.(check int) "begin logged" 1 (Rt.live_log_entries atlas ~tid:0);
          Rt.store_field atlas ctx a 0 1L;
          Rt.store_field atlas ctx a 0 2L (* same word: no new entry *);
          Rt.store_field atlas ctx a 1 3L (* new word: one more *);
          Alcotest.(check int) "begin + 2 updates" 3
            (Rt.live_log_entries atlas ~tid:0);
          Rt.unlock atlas ctx m);
      ]
  in
  Alcotest.(check bool) "completed" true (outcome = Scheduler.Completed);
  Alcotest.(check int) "ocs count" 1 (Rt.ocs_started atlas)

let test_commit_prunes () =
  let pmem, heap, atlas, _ = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m = Rt.make_mutex atlas sched in
           for i = 1 to 10 do
             Rt.with_lock atlas ctx m (fun () ->
                 Rt.store_field atlas ctx a 0 (Int64.of_int i))
           done);
       ]);
  Alcotest.(check int) "log fully pruned" 0 (Rt.live_log_entries atlas ~tid:0);
  Alcotest.(check int) "no retained sections" 0 (Rt.unpruned_ocses atlas)

let test_nested_locks_single_ocs () =
  let pmem, heap, atlas, _ = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m1 = Rt.make_mutex atlas sched in
           let m2 = Rt.make_mutex atlas sched in
           Rt.lock atlas ctx m1;
           let ocs1 = Rt.current_ocs ctx in
           Rt.lock atlas ctx m2;
           Alcotest.(check (option int)) "same section inside" ocs1
             (Rt.current_ocs ctx);
           Alcotest.(check int) "depth 2" 2 (Rt.ocs_depth ctx);
           Rt.store_field atlas ctx a 0 1L;
           Rt.unlock atlas ctx m2;
           Alcotest.(check (option int)) "still open" ocs1 (Rt.current_ocs ctx);
           Rt.unlock atlas ctx m1;
           Alcotest.(check (option int)) "closed" None (Rt.current_ocs ctx));
       ]);
  Alcotest.(check int) "exactly one section" 1 (Rt.ocs_started atlas)

let test_rollback_incomplete_section () =
  let pmem, heap, atlas, log_base = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  Heap.store_field heap a 0 100L;
  Heap.set_root heap a;
  Pmem.persist_all pmem;
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  let outcome =
    run_threads_s pmem ~crash_at_step:220
      [
        (fun sched ->
          let m = Rt.make_mutex atlas sched in
          Rt.lock atlas ctx m;
          Rt.store_field atlas ctx a 0 200L;
          (* Stay inside the section until the crash hits. *)
          for _ = 1 to 1000 do
            Nvm.Pmem.charge pmem 10
          done;
          Rt.unlock atlas ctx m);
      ]
  in
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "crash point not reached");
  Pmem.crash pmem Pmem.Rescue;
  let heap', report = recover_env pmem ~log_base in
  Alcotest.(check int) "one incomplete" 1 report.Recovery.incomplete;
  Alcotest.(check bool) "an update rolled back" true
    (report.Recovery.updates_applied >= 1);
  Alcotest.check int64 "pre-section value restored" 100L
    (Heap.load_field heap' a 0);
  Alcotest.(check (list string)) "no anomalies" [] report.Recovery.anomalies

let test_committed_section_survives () =
  let pmem, heap, atlas, log_base = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  Heap.store_field heap a 0 1L;
  Heap.set_root heap a;
  Pmem.persist_all pmem;
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m = Rt.make_mutex atlas sched in
           Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 0 2L));
       ]);
  Pmem.crash pmem Pmem.Rescue;
  let heap', report = recover_env pmem ~log_base in
  Alcotest.(check int) "nothing incomplete" 0 report.Recovery.incomplete;
  Alcotest.(check int) "nothing rolled back" 0 report.Recovery.updates_applied;
  Alcotest.check int64 "committed value kept" 2L (Heap.load_field heap' a 0)

(* The Section 2.3 hazard: a committed section that observed data from a
   section that never committed must also roll back. *)
let test_cascading_rollback () =
  let pmem, heap, atlas, log_base = make_env ~threads:2 () in
  let x = Heap.alloc heap ~kind:Kind.raw ~words:1 in
  let y = Heap.alloc heap ~kind:Kind.raw ~words:1 in
  let z = Heap.alloc heap ~kind:Kind.raw ~words:1 in
  List.iter
    (fun a ->
      Heap.store_field heap a 0 0L;
      ignore a)
    [ x; y; z ];
  Heap.set_root heap x;
  Pmem.persist_all pmem;
  let ctx0 = Rt.thread_ctx atlas ~tid:0 in
  let ctx1 = Rt.thread_ctx atlas ~tid:1 in
  let sched_holder = ref None in
  let get_mutexes () = Option.get !sched_holder in
  let thread_a sched =
    (match !sched_holder with
    | None ->
        let m1 = Rt.make_mutex atlas sched in
        let m2 = Rt.make_mutex atlas sched in
        sched_holder := Some (m1, m2)
    | Some _ -> ());
    let m1, m2 = get_mutexes () in
    Rt.lock atlas ctx0 m1;
    Rt.store_field atlas ctx0 x 0 1L;
    Rt.lock atlas ctx0 m2;
    Rt.store_field atlas ctx0 y 0 1L;
    Rt.unlock atlas ctx0 m2 (* inner release: section stays open *);
    (* Keep the outer section open until the crash. *)
    for _ = 1 to 3000 do
      Nvm.Pmem.charge pmem 10
    done;
    Rt.unlock atlas ctx0 m1
  in
  let thread_b sched =
    (match !sched_holder with
    | None ->
        let m1 = Rt.make_mutex atlas sched in
        let m2 = Rt.make_mutex atlas sched in
        sched_holder := Some (m1, m2)
    | Some _ -> ());
    let _, m2 = get_mutexes () in
    (* Give A time to acquire and release m2 first. *)
    Nvm.Pmem.charge pmem 500;
    Rt.lock atlas ctx1 m2;
    Rt.store_field atlas ctx1 z 0 (Int64.add (Rt.load_field atlas y 0) 10L);
    Rt.unlock atlas ctx1 m2 (* B commits *)
  in
  let outcome =
    run_threads_s pmem ~crash_at_step:2000 [ thread_a; thread_b ]
  in
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash while A was open");
  Pmem.crash pmem Pmem.Rescue;
  let heap', report = recover_env pmem ~log_base in
  Alcotest.(check int) "A incomplete" 1 report.Recovery.incomplete;
  Alcotest.(check int) "B cascaded" 1 report.Recovery.cascaded;
  Alcotest.check int64 "x undone" 0L (Heap.load_field heap' x 0);
  Alcotest.check int64 "y undone" 0L (Heap.load_field heap' y 0);
  Alcotest.check int64 "z undone despite B committing" 0L
    (Heap.load_field heap' z 0)

let test_log_flush_mode_survives_discard () =
  (* Without TSP, the synchronous flushing must be sufficient on its
     own: crash with Discard and verify both directions (committed data
     kept, interrupted section rolled back from the durable log). *)
  let pmem, heap, atlas, log_base = make_env ~mode:Mode.Log_flush () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
  Heap.store_field heap a 0 7L;
  Heap.store_field heap a 1 7L;
  Heap.set_root heap a;
  Pmem.persist_all pmem;
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  let outcome =
    run_threads_s pmem ~crash_at_step:1500
      [
        (fun sched ->
          let m = Rt.make_mutex atlas sched in
          (* First section commits; its data must be durable. *)
          Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 0 8L);
          (* Second section is interrupted mid-flight. *)
          Rt.lock atlas ctx m;
          Rt.store_field atlas ctx a 1 9L;
          for _ = 1 to 2000 do
            Nvm.Pmem.charge pmem 10
          done;
          Rt.unlock atlas ctx m);
      ]
  in
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Pmem.crash pmem Pmem.Discard (* no TSP rescue *);
  let heap', report = recover_env pmem ~log_base in
  Alcotest.check int64 "committed store survived its flush" 8L
    (Heap.load_field heap' a 0);
  Alcotest.check int64 "interrupted store rolled back" 7L
    (Heap.load_field heap' a 1);
  Alcotest.(check int) "one incomplete" 1 report.Recovery.incomplete

let test_flush_counts_by_mode () =
  let flushes mode =
    let pmem, heap, atlas, _ = make_env ~mode () in
    let a = Heap.alloc heap ~kind:Kind.raw ~words:2 in
    Heap.set_root heap a;
    Pmem.persist_all pmem;
    let before = (Pmem.stats pmem).Nvm.Stats.flushes in
    let ctx = Rt.thread_ctx atlas ~tid:0 in
    ignore
      (run_threads_s pmem
         [
           (fun sched ->
             let m = Rt.make_mutex atlas sched in
             for i = 1 to 20 do
               Rt.with_lock atlas ctx m (fun () ->
                   Rt.store_field atlas ctx a 0 (Int64.of_int i))
             done);
         ]);
    (Pmem.stats pmem).Nvm.Stats.flushes - before
  in
  Alcotest.(check int) "no-log never flushes" 0 (flushes Mode.No_log);
  Alcotest.(check int) "log-only never flushes (TSP!)" 0 (flushes Mode.Log_only);
  Alcotest.(check bool) "log-flush flushes a lot" true
    (flushes Mode.Log_flush >= 60)

let test_recovery_seq_seed () =
  let pmem, heap, atlas, log_base = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:1 in
  Heap.set_root heap a;
  Pmem.persist_all pmem;
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m = Rt.make_mutex atlas sched in
           Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 0 1L));
       ]);
  Pmem.crash pmem Pmem.Rescue;
  let heap', report = recover_env pmem ~log_base in
  (* A new runtime seeded past the recovered maximum keeps sequences
     monotone across the restart. *)
  Alcotest.(check bool) "max_seq recovered" true (report.Recovery.max_seq >= 0);
  let atlas' =
    Rt.create ~mode:Mode.Log_only ~heap:heap' ~log_base
      ~log_size:(256 * 1024) ~num_threads:2
      ~first_seq:(report.Recovery.max_seq + 1) ()
  in
  ignore (atlas' : Rt.t)

let test_with_lock_releases_on_exception () =
  let pmem, heap, atlas, _ = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:1 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m = Rt.make_mutex atlas sched in
           (try
              Rt.with_lock atlas ctx m (fun () ->
                  Rt.store_field atlas ctx a 0 1L;
                  failwith "app error")
            with Failure _ -> ());
           (* The mutex must be free and the section closed. *)
           Alcotest.(check int) "depth restored" 0 (Rt.ocs_depth ctx);
           Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 0 2L));
       ]);
  Alcotest.check int64 "usable afterwards" 2L (Rt.load_field atlas a 0)

(* Deferred durability (Log_flush_async): without TSP, committed
   sections beyond the last durability point must roll back; sections
   covered by the watermark must survive a Discard crash. *)
let test_async_rolls_back_uncovered_commits () =
  let pmem, heap, atlas, log_base = make_env ~mode:Mode.Log_flush_async () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:4 in
  for i = 0 to 3 do
    Heap.store_field heap a i 0L
  done;
  Heap.set_root heap a;
  Pmem.persist_all pmem;
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m = Rt.make_mutex atlas sched in
           (* Two committed sections, then a durability point, then two
              more committed sections that stay uncovered. *)
           Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 0 1L);
           Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 1 1L);
           Rt.checkpoint atlas;
           Alcotest.(check bool) "watermark advanced" true
             (Rt.watermark atlas > 0);
           Alcotest.(check int) "pending drained" 0 (Rt.pending_commits atlas);
           Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 2 1L);
           Rt.with_lock atlas ctx m (fun () -> Rt.store_field atlas ctx a 3 1L);
           Alcotest.(check int) "two pending" 2 (Rt.pending_commits atlas));
       ]);
  Pmem.crash pmem Pmem.Discard (* no TSP: deferred durability must hold *);
  let heap', report = recover_env pmem ~log_base in
  Alcotest.check int64 "covered commit survives" 1L (Heap.load_field heap' a 0);
  Alcotest.check int64 "covered commit survives (2)" 1L
    (Heap.load_field heap' a 1);
  Alcotest.check int64 "uncovered commit rolled back" 0L
    (Heap.load_field heap' a 2);
  Alcotest.check int64 "uncovered commit rolled back (2)" 0L
    (Heap.load_field heap' a 3);
  Alcotest.(check bool) "cascade count includes watermark rollbacks" true
    (report.Recovery.cascaded >= 2)

let test_async_auto_checkpoint () =
  let pmem, heap, atlas, _ = make_env ~mode:Mode.Log_flush_async () in
  (* Recreate with a small interval to trigger automatic checkpoints. *)
  ignore (atlas : Rt.t);
  let log_base = (Pmem.config pmem).Config.region_size - (256 * 1024) in
  let atlas =
    Rt.create ~mode:Mode.Log_flush_async ~heap ~log_base
      ~log_size:(256 * 1024) ~num_threads:1 ~checkpoint_every:4 ()
  in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:1 in
  Heap.set_root heap a;
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m = Rt.make_mutex atlas sched in
           for i = 1 to 10 do
             Rt.with_lock atlas ctx m (fun () ->
                 Rt.store_field atlas ctx a 0 (Int64.of_int i))
           done);
       ]);
  (* 10 commits with interval 4: at least two automatic checkpoints. *)
  Alcotest.(check bool) "watermark advanced automatically" true
    (Rt.watermark atlas > 0);
  Alcotest.(check bool) "pending bounded by interval" true
    (Rt.pending_commits atlas < 4)

let test_async_cheaper_than_eager () =
  (* The ablation: deferred durability must flush strictly less than
     eager per-commit flushing under the same workload. *)
  let flushes mode =
    let pmem, heap, atlas, _ = make_env ~mode () in
    let a = Heap.alloc heap ~kind:Kind.raw ~words:8 in
    Heap.set_root heap a;
    Pmem.persist_all pmem;
    let before = (Pmem.stats pmem).Nvm.Stats.flushes in
    let ctx = Rt.thread_ctx atlas ~tid:0 in
    ignore
      (run_threads_s pmem
         [
           (fun sched ->
             let m = Rt.make_mutex atlas sched in
             for i = 1 to 64 do
               Rt.with_lock atlas ctx m (fun () ->
                   for j = 0 to 7 do
                     Rt.store_field atlas ctx a j (Int64.of_int (i + j))
                   done)
             done);
         ]);
    (Pmem.stats pmem).Nvm.Stats.flushes - before
  in
  let eager = flushes Mode.Log_flush in
  let deferred = flushes Mode.Log_flush_async in
  Alcotest.(check bool)
    (Printf.sprintf "deferred (%d) < eager (%d)" deferred eager)
    true (deferred < eager)

(* Deep nesting stress: many mutexes acquired within one OCS, with
   stores under each.  The log must hold the whole unpruned section and
   commit must prune it all at once. *)
let test_deep_nesting_stress () =
  let pmem, heap, atlas, _ = make_env () in
  let a = Heap.alloc heap ~kind:Kind.raw ~words:32 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let mutexes = Array.init 16 (fun _ -> Rt.make_mutex atlas sched) in
           Array.iter (fun m -> Rt.lock atlas ctx m) mutexes;
           Alcotest.(check int) "depth 16" 16 (Rt.ocs_depth ctx);
           for i = 0 to 31 do
             Rt.store_field atlas ctx a i (Int64.of_int i)
           done;
           (* Begin + 32 updates retained while the section is open. *)
           Alcotest.(check int) "all entries retained" 33
             (Rt.live_log_entries atlas ~tid:0);
           for i = 15 downto 0 do
             Rt.unlock atlas ctx mutexes.(i)
           done;
           Alcotest.(check int) "depth restored" 0 (Rt.ocs_depth ctx));
       ]);
  Alcotest.(check int) "fully pruned after commit" 0
    (Rt.live_log_entries atlas ~tid:0);
  Alcotest.(check int) "one section total" 1 (Rt.ocs_started atlas)

(* A section bigger than the ring must fail loudly, not wrap silently. *)
let test_log_full_inside_giant_section () =
  let pmem = desktop_pmem ~region_mib:2 () in
  let size = (Pmem.config pmem).Config.region_size in
  let log_base = size - (64 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  (* Tiny log: a few hundred entries per thread. *)
  let atlas =
    Rt.create ~mode:Mode.Log_only ~heap ~log_base ~log_size:(16 * 1024)
      ~num_threads:1 ()
  in
  let big = Heap.alloc heap ~kind:Kind.raw ~words:2000 in
  let ctx = Rt.thread_ctx atlas ~tid:0 in
  let hit_full = ref false in
  ignore
    (run_threads_s pmem
       [
         (fun sched ->
           let m = Rt.make_mutex atlas sched in
           Rt.lock atlas ctx m;
           (* Once the ring is exhausted, even the commit record cannot
              be appended: the section is stuck until a crash-recovery.
              The error must surface on the store and stay raised on the
              commit path too. *)
           try
             for i = 0 to 1999 do
               Rt.store_field atlas ctx big i 1L
             done;
             Rt.unlock atlas ctx m
           with Undo_log.Log_full _ -> hit_full := true);
       ]);
  Alcotest.(check bool) "overflow detected" true !hit_full

(* Property: for a single thread running a sequence of transactions
   (each an OCS writing a few slots), a crash at ANY step recovers the
   heap to exactly the prefix state: all committed transactions applied,
   nothing else.  This is failure atomicity stated as an executable
   property and searched over random scripts and crash points. *)
let prop_rollback_is_prefix =
  qcheck ~count:40 "rollback recovers the committed prefix exactly"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 12)
           (list_size (int_range 1 4) (pair (int_range 0 15) (int_range 0 999))))
        (int_range 1 400)
        bool)
    (fun (txns, crash_at, flush_mode) ->
      let mode = if flush_mode then Mode.Log_flush else Mode.Log_only in
      let pmem, heap, atlas, log_base = make_env ~mode () in
      let slots = Heap.alloc heap ~kind:Kind.raw ~words:16 in
      for i = 0 to 15 do
        Heap.store_field heap slots i 0L
      done;
      Heap.set_root heap slots;
      Pmem.persist_all pmem;
      let ctx = Rt.thread_ctx atlas ~tid:0 in
      (* Volatile trace of the model state after each commit. *)
      let model = Array.make 16 0L in
      let committed_states = ref [ Array.copy model ] in
      let outcome =
        run_threads_s pmem ~crash_at_step:crash_at
          [
            (fun sched ->
              let m = Rt.make_mutex atlas sched in
              List.iter
                (fun writes ->
                  Rt.with_lock atlas ctx m (fun () ->
                      List.iter
                        (fun (slot, v) ->
                          Rt.store_field atlas ctx slots slot (Int64.of_int v);
                          model.(slot) <- Int64.of_int v)
                        writes);
                  (* The section committed: snapshot the model. *)
                  committed_states := Array.copy model :: !committed_states)
                txns);
          ]
      in
      (match outcome with
      | Scheduler.Crashed _ | Scheduler.Completed -> ()
      | Scheduler.Deadlocked _ -> Alcotest.fail "deadlock");
      (* Under Log_only we need TSP; under Log_flush even a discard
         crash must recover. *)
      Pmem.crash pmem (if flush_mode then Pmem.Discard else Pmem.Rescue);
      let heap', _report = recover_env pmem ~log_base in
      let recovered = Array.init 16 (fun i -> Heap.load_field heap' slots i) in
      ignore heap;
      (* The recovered state must be the latest committed state.  One
         boundary needs care: the crash can land after the Commit entry
         reached the log but before our volatile snapshot ran (inside
         unlock's trailing cycle charge); then recovery legitimately
         keeps that transaction, whose full effect equals the volatile
         model at crash time. *)
      let latest = List.hd !committed_states in
      recovered = latest || recovered = model)

(* Deferred-durability counterpart of the prefix property: with
   forced durability points at random places and a Discard crash, the
   recovered state must equal SOME committed prefix — specifically one
   at or after the last durability point. *)
let prop_async_recovers_a_prefix =
  qcheck ~count:30 "async + discard recovers a committed prefix"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 10)
           (pair
              (list_size (int_range 1 3) (pair (int_range 0 15) (int_range 0 999)))
              bool (* force a durability point after this txn? *)))
        (int_range 1 400))
    (fun (txns, crash_at) ->
      let pmem, heap, atlas, log_base = make_env ~mode:Mode.Log_flush_async () in
      let slots = Heap.alloc heap ~kind:Kind.raw ~words:16 in
      for i = 0 to 15 do
        Heap.store_field heap slots i 0L
      done;
      Heap.set_root heap slots;
      Pmem.persist_all pmem;
      let ctx = Rt.thread_ctx atlas ~tid:0 in
      let model = Array.make 16 0L in
      let committed_states = ref [ Array.copy model ] in
      ignore
        (run_threads_s pmem ~crash_at_step:crash_at
           [
             (fun sched ->
               let m = Rt.make_mutex atlas sched in
               List.iter
                 (fun (writes, cp) ->
                   Rt.with_lock atlas ctx m (fun () ->
                       List.iter
                         (fun (slot, v) ->
                           Rt.store_field atlas ctx slots slot (Int64.of_int v);
                           model.(slot) <- Int64.of_int v)
                         writes);
                   committed_states := Array.copy model :: !committed_states;
                   if cp then Rt.checkpoint atlas)
                 txns);
           ]);
      Pmem.crash pmem Pmem.Discard;
      let heap', _ = recover_env pmem ~log_base in
      let recovered = Array.init 16 (fun i -> Heap.load_field heap' slots i) in
      ignore heap;
      List.exists (fun st -> st = recovered) (model :: !committed_states))

(* --- Log_entry fuzz: the decoder is the recovery path's first line of
   defence against adversarial images, so it must be total (never raise)
   and must never accept damaged payload words. --- *)

let prop_entry_decode_total =
  qcheck ~count:1000 "log entry: decoding arbitrary words is total + canonical"
    QCheck2.Gen.(quad ui64 ui64 ui64 ui64)
    (fun (w0, w1, w2, w3) ->
      let words = [| w0; w1; w2; w3 |] in
      match Log_entry.read (fun a -> words.(a / 8)) ~at:0 with
      | None -> true
      | Some e ->
          (* Anything accepted must behave like a legitimate encoding:
             writing the decoded entry back yields an image that decodes
             to the same entry. *)
          let out = Array.make 4 0L in
          Log_entry.write (fun a v -> out.(a / 8) <- v) ~at:0 e;
          (match Log_entry.read (fun a -> out.(a / 8)) ~at:0 with
          | Some e' -> e' = e
          | None -> false))

let gen_payload =
  QCheck2.Gen.(
    oneof
      [
        map (fun o -> Log_entry.Begin { ocs = o }) (int_range 0 10_000);
        map
          (fun (a, old) -> Log_entry.Update { addr = a * 8; old })
          (pair (int_range 0 100_000) ui64);
        map
          (fun (o, m) -> Log_entry.Dep { on_ocs = o; mutex = m })
          (pair (int_range 0 10_000) (int_range 0 1_000));
        map (fun o -> Log_entry.Commit { ocs = o }) (int_range 0 10_000);
      ])

let prop_entry_bitflip_detected =
  qcheck ~count:800 "log entry: a single bit flip never silently alters payload"
    QCheck2.Gen.(
      quad (int_range 1 1_000_000) (int_range 0 0xFFFF) gen_payload
        (int_range 0 255))
    (fun (seq, tid, payload, bit) ->
      let words = Array.make 4 0L in
      let e = { Log_entry.seq; tid; payload } in
      Log_entry.write (fun a v -> words.(a / 8) <- v) ~at:0 e;
      let w = bit / 64 and b = bit mod 64 in
      words.(w) <- Int64.logxor words.(w) (Int64.shift_left 1L b);
      match Log_entry.read (fun a -> words.(a / 8)) ~at:0 with
      | None -> true
      | Some e' ->
          (* The only field outside the checksum's reach is the tid
             (low 32 bits of w0); nothing else may survive a flip. *)
          w = 0 && b < 32
          && e'.Log_entry.seq = e.Log_entry.seq
          && e'.Log_entry.payload = e.Log_entry.payload)

let suite =
  ( "atlas",
    [
      case "mode: string roundtrip" test_mode_strings;
      case "mode: logs/flushes flags" test_mode_flags;
      case "log entry: roundtrip all payloads" test_entry_roundtrip;
      case "log entry: garbage and corruption rejected"
        test_entry_rejects_garbage;
      case "log entry: header written last" test_entry_header_written_last;
      prop_entry_decode_total;
      prop_entry_bitflip_detected;
      case "undo log: format and attach" test_log_format_attach;
      case "undo log: append/scan roundtrip" test_log_append_scan;
      case "undo log: prune, wrap, sentinel discipline" test_log_prune_and_wrap;
      case "undo log: ring exhaustion raises" test_log_full;
      case "undo log: flush_entry persists synchronously"
        test_log_flush_entry_counts;
      case "undo log: scan stops at a torn entry"
        test_log_scan_stops_at_torn_entry;
      case "runtime: store outside a section rejected" test_store_requires_ocs;
      case "runtime: no-log mode stores anywhere"
        test_nolog_store_allowed_anywhere;
      case "runtime: first store per word logged once"
        test_first_store_logged_once;
      case "runtime: commit prunes the log" test_commit_prunes;
      case "runtime: nested locks form one section"
        test_nested_locks_single_ocs;
      case "recovery: incomplete section rolled back"
        test_rollback_incomplete_section;
      case "recovery: committed section preserved"
        test_committed_section_survives;
      case "recovery: dependency cascade rolls back a committed section"
        test_cascading_rollback;
      case "recovery: log-flush survives a non-TSP crash"
        test_log_flush_mode_survives_discard;
      case "runtime: flush counts per mode" test_flush_counts_by_mode;
      case "recovery: sequence seeding across restart" test_recovery_seq_seed;
      case "runtime: with_lock releases on exception"
        test_with_lock_releases_on_exception;
      prop_rollback_is_prefix;
      case "runtime: deep nesting stress" test_deep_nesting_stress;
      case "undo log: giant section overflows loudly"
        test_log_full_inside_giant_section;
      case "async: uncovered commits roll back, covered survive"
        test_async_rolls_back_uncovered_commits;
      case "async: automatic durability points" test_async_auto_checkpoint;
      case "async: flushes less than eager mode" test_async_cheaper_than_eager;
      prop_async_recovers_a_prefix;
    ] )
