(* Batched-quantum execution (the PR 6 tentpole) must be a pure
   host-speed optimisation: with quanta granted, bursts of uncontended
   loads/stores charge the thread clock without re-entering the
   scheduler, yet every simulated observable — cycles, step counts,
   interleavings, crash points, durable images, traces, histories —
   stays bit-identical to the suspend-per-step slow path.  These tests
   pin that contract from every angle the bench's single A/B cell
   cannot: all Table 1 variants, exhaustive crash enumeration, the
   tracer and history observers, and randomised slice/quantum sizes. *)

open Helpers
module Runner = Workload.Runner
module Table1 = Workload.Table1
module FI = Workload.Fault_injector
module Tracer = Obs.Tracer
module History = Check.History
module Mutex = Scheduler.Mutex

(* Everything a run exposes about the simulation (host wall time and
   latency sample buffers excluded). *)
let observables (r : Runner.result) =
  ( r.Runner.elapsed_cycles,
    r.Runner.total_steps,
    r.Runner.iterations_done,
    r.Runner.outcome,
    r.Runner.entries,
    r.Runner.device_stats )

let variant_config variant =
  {
    (Runner.calibrated_config Nvm.Config.desktop) with
    Runner.variant;
    threads = 3;
    iterations = 120;
    workload = Runner.Counters { h_keys = 512; preload = true };
    n_buckets = 512;
    log_mib = 2;
  }

(* 1. Full-workload identity across every Table 1 variant: the quantum
   path runs the map, Atlas and recovery machinery end to end, so any
   accounting slip (a missed settle, a double charge, a skipped jitter
   draw) shows up as a cycle or entry diff here. *)
let test_table1_variants_identical () =
  List.iter
    (fun variant ->
      let name = Runner.variant_to_string variant in
      let run quantum =
        Runner.run { (variant_config variant) with Runner.quantum }
      in
      let on = run true and off = run false in
      Alcotest.(check bool) (name ^ ": consistent") true (Runner.consistent on);
      Alcotest.(check int)
        (name ^ ": elapsed cycles")
        off.Runner.elapsed_cycles on.Runner.elapsed_cycles;
      Alcotest.(check bool)
        (name ^ ": all observables identical")
        true
        (observables on = observables off))
    Table1.variants

(* 2. Crash fidelity, directly: a crash injected at a fixed step must
   fire at that step and leave the same durable image whether or not
   the crashed burst was running inside a quantum (grant budgets are
   clamped to the crash boundary, so the handler path takes over for
   the final pre-crash step). *)
let test_crash_image_identical () =
  let crashed ~quantum =
    let pmem = desktop_pmem ~region_mib:1 () in
    let sched = Scheduler.create ~seed:11 ~quantum () in
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 0 to 9_999 do
             Pmem.store_int pmem ((i * 8) land 0xFFFF) i
           done)
        : int);
    Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
    Pmem.set_quantum pmem (Scheduler.quantum_handle sched);
    let outcome = Scheduler.run ~crash_at_step:1234 sched in
    Pmem.clear_quantum pmem;
    Pmem.clear_step_hook pmem;
    (match outcome with
    | Scheduler.Crashed { at_step } ->
        Alcotest.(check int) "crash step" 1234 at_step
    | _ -> Alcotest.fail "expected a crash");
    Pmem.crash pmem Pmem.Rescue;
    Pmem.durable_snapshot pmem
  in
  Alcotest.(check bool)
    "post-crash durable image identical" true
    (String.equal (crashed ~quantum:true) (crashed ~quantum:false))

(* 3. Crash-point-set equality over an exhaustive enumeration: the
   campaign visits every stride-th boundary of a window, and each run's
   full outcome — crash step, recovery verdict, rollback work, per-run
   device cycles, reproducer — must be identical with and without
   quanta, and the rendered ledger byte-identical across --jobs. *)
let test_exhaustive_campaign_identical () =
  let spec quantum =
    let base =
      {
        (Runner.calibrated_config Nvm.Config.desktop) with
        Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only;
        threads = 2;
        iterations = 150;
        workload = Runner.Counters { h_keys = 256; preload = true };
        n_buckets = 512;
        log_mib = 1;
        quantum;
      }
    in
    {
      (FI.default_spec base) with
      FI.exhaustive = Some { FI.from_step = 10_000; window = 800; stride = 100 };
    }
  in
  let on = FI.run ~jobs:1 (spec true) in
  let off = FI.run ~jobs:1 (spec false) in
  Alcotest.(check (list int))
    "crash-point set identical"
    (List.map (fun (o : FI.run_outcome) -> o.FI.crash_step) off.FI.outcomes)
    (List.map (fun (o : FI.run_outcome) -> o.FI.crash_step) on.FI.outcomes);
  Alcotest.(check bool)
    "every run outcome identical" true
    (on.FI.outcomes = off.FI.outcomes);
  let render s = Fmt.str "%a" FI.pp_summary s in
  Alcotest.(check bool)
    "verdict ledger identical" true
    (String.equal (render on) (render off));
  Alcotest.(check bool)
    "ledger byte-identical across --jobs (quanta on)" true
    (String.equal (render on) (render (FI.run ~jobs:2 (spec true))))

(* 4. The tracer under quanta: emitted events (codes, tids, virtual
   timestamps, payloads) must match the slow path byte for byte —
   including the ctx-switch dedup, which must not see phantom switches
   at quantum boundaries. *)
let test_tracer_identical () =
  let run quantum =
    let tracer = Tracer.create ~ring_cap:65536 () in
    let r =
      Runner.run
        {
          (variant_config (Runner.Mutex_map Atlas.Mode.Log_only)) with
          Runner.quantum;
          tracer = Some tracer;
        }
    in
    Alcotest.(check bool) "consistent" true (Runner.consistent r);
    let evs = ref [] in
    Tracer.iter tracer (fun e -> evs := e :: !evs);
    (Tracer.emitted tracer, Tracer.dropped tracer, List.rev !evs)
  in
  let em_on, dr_on, evs_on = run true in
  let em_off, dr_off, evs_off = run false in
  Alcotest.(check int) "events emitted" em_off em_on;
  Alcotest.(check int) "events dropped" dr_off dr_on;
  Alcotest.(check bool) "event streams identical" true (evs_on = evs_off)

(* 5. The ISSUE-6 bugfix regression: a history record's t0/t1 read the
   virtual clock mid-burst, and must observe the settled per-op cycle —
   not the cycle at which the quantum was granted.  Records (op, key,
   tid, timestamps, results) must be identical across quantum on/off. *)
let test_history_timestamps_identical () =
  let run quantum =
    let recorder = ref None in
    let instrument sched ops =
      let h = History.create ~sched ~capacity:4096 () in
      recorder := Some h;
      History.wrap h ops
    in
    let r =
      Runner.run
        {
          (variant_config (Runner.Mutex_map Atlas.Mode.Log_only)) with
          Runner.quantum;
          instrument = Some instrument;
        }
    in
    Alcotest.(check bool) "consistent" true (Runner.consistent r);
    match !recorder with
    | Some h -> History.records h
    | None -> Alcotest.fail "instrument hook never ran"
  in
  let on = run true and off = run false in
  Alcotest.(check int) "ops recorded" (List.length off) (List.length on);
  Alcotest.(check bool)
    "records (incl. t0/t1 timestamps) identical" true (on = off)

(* 6. Randomised equivalence: a contended-then-uncontended two-thread
   workload at an arbitrary slice (which also bounds the quantum size)
   must match the suspend-per-step reference in every observable. *)
let mini_observables ~seed ~slice ~quantum =
  let pmem = desktop_pmem ~region_mib:1 () in
  let sched =
    Scheduler.create ~seed ~cost_jitter:3 ~deterministic_slice:slice ~quantum ()
  in
  let m = Mutex.create sched in
  let body tid () =
    for i = 0 to 199 do
      Mutex.lock m;
      let addr = (i * 64) land 0xFFFF in
      Pmem.store_int pmem addr ((tid * 100_000) + i);
      ignore (Pmem.load_int pmem addr : int);
      if i land 31 = 0 then begin
        Pmem.flush pmem addr;
        Pmem.fence pmem
      end;
      Mutex.unlock m
    done;
    (* Uncontended tail for thread 0: where quanta actually grant. *)
    if tid = 0 then
      for i = 0 to 999 do
        Pmem.store_int pmem ((i * 8) land 0xFFFF) i
      done
  in
  ignore (Scheduler.spawn sched ~name:"t0" (body 0) : int);
  ignore (Scheduler.spawn sched ~name:"t1" (body 1) : int);
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  Pmem.set_quantum pmem (Scheduler.quantum_handle sched);
  (match Scheduler.run sched with
  | Scheduler.Completed -> ()
  | _ -> Alcotest.fail "expected completion");
  Pmem.clear_quantum pmem;
  Pmem.clear_step_hook pmem;
  ( Pmem.stats pmem,
    Pmem.durable_snapshot pmem,
    Scheduler.elapsed_cycles sched,
    Scheduler.total_steps sched )

let qcheck_quantum_equiv =
  qcheck ~count:25 "random slice/quantum matches the slow path"
    QCheck2.Gen.(triple (int_bound 9_999) (int_bound 64) bool)
    (fun (seed, slice, quantum) ->
      mini_observables ~seed ~slice ~quantum
      = mini_observables ~seed ~slice:0 ~quantum:false)

(* 7. The allocation-free Sim_rng rewrite that feeds per-op jitter draws
   inside quanta: its two-limb native-int stream must match the boxed
   int64 splitmix64 reference draw by draw, across every public
   operation and both [int] bound regimes (limb-wise modulo below
   2^30, the int64 fallback above). *)
module Rng_ref = struct
  type t = { mutable state : int64 }

  let golden_gamma = 0x9E3779B97F4A7C15L
  let create ~seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state golden_gamma;
    let z = t.state in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t n =
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int n))

  let bool t = Int64.logand (next t) 1L = 1L

  let float t x =
    let u = Int64.to_float (Int64.shift_right_logical (next t) 11) in
    x *. (u /. 9007199254740992.0)
end

let rng_bounds =
  [ 1; 2; 3; 7; 100; 12_289; 1 lsl 20; 0x3FFFFFFF; 0x40000000; 0x40000001;
    1 lsl 40; max_int ]

let qcheck_rng_reference =
  qcheck ~count:500 "Sim_rng matches the boxed int64 reference"
    QCheck2.Gen.int
    (fun seed ->
      let r = Rng.create ~seed and f = Rng_ref.create ~seed in
      let ok = ref true in
      for _ = 1 to 8 do
        ok := !ok && Int64.equal (Rng.next r) (Rng_ref.next f);
        List.iter (fun n -> ok := !ok && Rng.int r n = Rng_ref.int f n)
          rng_bounds;
        ok := !ok && Bool.equal (Rng.bool r) (Rng_ref.bool f);
        ok := !ok && Float.equal (Rng.float r 3.5) (Rng_ref.float f 3.5)
      done;
      (* split derives the child from the next raw draw; copy preserves
         the stream position. *)
      let rc = Rng.split r and fc = { Rng_ref.state = Rng_ref.next f } in
      ok := !ok && Int64.equal (Rng.next rc) (Rng_ref.next fc);
      let rd = Rng.copy r in
      ok := !ok && Int64.equal (Rng.next rd) (Rng.next r);
      !ok)

let suite =
  ( "quantum",
    [
      case "quantum invisible across all Table 1 variants"
        test_table1_variants_identical;
      case "crash image identical across quantum on/off"
        test_crash_image_identical;
      slow_case "exhaustive crash enumeration identical with quanta"
        test_exhaustive_campaign_identical;
      case "tracer byte-identical under quanta" test_tracer_identical;
      case "history timestamps settle per op inside quanta"
        test_history_timestamps_identical;
      qcheck_quantum_equiv;
      qcheck_rng_reference;
    ] )
