(* Tests for the Atlas-fortified B+-tree: structural correctness under
   heavy splitting, model-based random testing, concurrency, and crash
   recovery of interrupted multi-node splits. *)

open Helpers
module Btree = Tsp_maps.Btree
module Map_intf = Tsp_maps.Map_intf
module Rt = Atlas.Runtime
module Mode = Atlas.Mode
module Heap_gc = Pheap.Heap_gc

let btree_env ?(mode = Mode.Log_only) ?(threads = 2) ?(order = Btree.default_order) () =
  let pmem = desktop_pmem ~region_mib:8 () in
  let size = (Pmem.config pmem).Config.region_size in
  let log_base = size - (1024 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  let atlas =
    Rt.create ~mode ~heap ~log_base ~log_size:(1024 * 1024)
      ~num_threads:threads ()
  in
  let sched = Scheduler.create ~seed:5 () in
  let bt = Btree.create heap ~atlas ~sched ~order () in
  (pmem, heap, atlas, sched, bt)

let in_thread pmem sched body =
  ignore (Scheduler.spawn sched body : int);
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  Fun.protect
    ~finally:(fun () -> Pmem.clear_step_hook pmem)
    (fun () ->
      match Scheduler.run sched with
      | Scheduler.Completed -> ()
      | _ -> Alcotest.fail "unexpected scheduler outcome")

let audit heap bt =
  match Btree.check_plain heap ~root:(Btree.root bt) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "structural audit failed: %s" e

let test_basics () =
  let pmem, heap, _, sched, bt = btree_env () in
  let ops = Btree.ops bt in
  in_thread pmem sched (fun () ->
      Alcotest.(check (option int64)) "empty" None (ops.Map_intf.get ~tid:0 ~key:1);
      ops.Map_intf.set ~tid:0 ~key:5 ~value:50L;
      ops.Map_intf.set ~tid:0 ~key:1 ~value:10L;
      ops.Map_intf.set ~tid:0 ~key:3 ~value:30L;
      Alcotest.(check (option int64)) "get 3" (Some 30L)
        (ops.Map_intf.get ~tid:0 ~key:3);
      ops.Map_intf.set ~tid:0 ~key:3 ~value:31L;
      Alcotest.(check (option int64)) "overwrite" (Some 31L)
        (ops.Map_intf.get ~tid:0 ~key:3);
      ops.Map_intf.incr ~tid:0 ~key:3 ~by:9L;
      Alcotest.(check (option int64)) "incr" (Some 40L)
        (ops.Map_intf.get ~tid:0 ~key:3);
      ops.Map_intf.incr ~tid:0 ~key:100 ~by:7L;
      Alcotest.(check (option int64)) "incr inserts" (Some 7L)
        (ops.Map_intf.get ~tid:0 ~key:100));
  audit heap bt;
  Alcotest.(check int) "size" 4 (Btree.size_plain heap ~root:(Btree.root bt))

let test_splits_grow_height () =
  let pmem, heap, _, sched, bt = btree_env ~order:4 () in
  let ops = Btree.ops bt in
  Alcotest.(check int) "height 1" 1 (Btree.height heap ~root:(Btree.root bt));
  in_thread pmem sched (fun () ->
      for k = 1 to 100 do
        ops.Map_intf.set ~tid:0 ~key:k ~value:(Int64.of_int k)
      done);
  audit heap bt;
  Alcotest.(check bool) "height grew" true
    (Btree.height heap ~root:(Btree.root bt) >= 3);
  Alcotest.(check int) "all present" 100
    (Btree.size_plain heap ~root:(Btree.root bt));
  (* In-order traversal. *)
  let keys =
    List.rev (Btree.fold_plain heap ~root:(Btree.root bt) (fun k _ acc -> k :: acc) [])
  in
  Alcotest.(check (list int)) "sorted 1..100" (List.init 100 (fun i -> i + 1)) keys

let test_descending_and_random_orders () =
  List.iter
    (fun seed ->
      let pmem, heap, _, sched, bt = btree_env ~order:5 () in
      let ops = Btree.ops bt in
      let rng = Rng.create ~seed in
      in_thread pmem sched (fun () ->
          if seed = 0 then
            for k = 200 downto 1 do
              ops.Map_intf.set ~tid:0 ~key:k ~value:(Int64.of_int k)
            done
          else
            for _ = 1 to 300 do
              let k = Rng.int rng 500 in
              ops.Map_intf.set ~tid:0 ~key:k ~value:(Int64.of_int k)
            done);
      audit heap bt)
    [ 0; 1; 2; 3 ]

let test_remove () =
  let pmem, heap, _, sched, bt = btree_env ~order:4 () in
  let ops = Btree.ops bt in
  in_thread pmem sched (fun () ->
      for k = 1 to 50 do
        ops.Map_intf.set ~tid:0 ~key:k ~value:(Int64.of_int k)
      done;
      Alcotest.(check bool) "remove present" true
        (ops.Map_intf.remove ~tid:0 ~key:25);
      Alcotest.(check bool) "remove absent" false
        (ops.Map_intf.remove ~tid:0 ~key:25);
      Alcotest.(check (option int64)) "gone" None (ops.Map_intf.get ~tid:0 ~key:25);
      Alcotest.(check (option int64)) "neighbour kept" (Some 26L)
        (ops.Map_intf.get ~tid:0 ~key:26);
      (* Re-insert after delete must work despite stale separators. *)
      ops.Map_intf.set ~tid:0 ~key:25 ~value:99L;
      Alcotest.(check (option int64)) "reinserted" (Some 99L)
        (ops.Map_intf.get ~tid:0 ~key:25));
  audit heap bt

let test_attach () =
  let pmem, heap, atlas, sched, bt = btree_env () in
  let ops = Btree.ops bt in
  in_thread pmem sched (fun () -> ops.Map_intf.set ~tid:0 ~key:1 ~value:1L);
  let sched2 = Scheduler.create () in
  let bt2 = Btree.attach heap ~atlas ~sched:sched2 (Btree.root bt) in
  Alcotest.(check int) "order preserved" (Btree.order bt) (Btree.order bt2);
  check_raises_invalid "attach to non-header" (fun () ->
      ignore (Btree.attach heap ~atlas ~sched:sched2 64))

let test_set_plain_interops () =
  let pmem, heap, _, sched, bt = btree_env ~order:4 () in
  for k = 1 to 60 do
    Btree.set_plain bt ~key:k ~value:(Int64.of_int (k * 2))
  done;
  audit heap bt;
  let ops = Btree.ops bt in
  in_thread pmem sched (fun () ->
      Alcotest.(check (option int64)) "plain insert visible" (Some 40L)
        (ops.Map_intf.get ~tid:0 ~key:20))

let test_concurrent_writers () =
  let pmem, heap, _, sched, bt = btree_env ~threads:8 () in
  let ops = Btree.ops bt in
  for tid = 0 to 7 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 0 to 49 do
             ops.Map_intf.set ~tid ~key:((100 * tid) + i) ~value:(Int64.of_int tid)
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  ignore (Scheduler.run sched);
  Pmem.clear_step_hook pmem;
  audit heap bt;
  Alcotest.(check int) "all inserted" 400
    (Btree.size_plain heap ~root:(Btree.root bt))

let prop_btree_vs_model =
  qcheck ~count:40 "B+-tree behaves like Map"
    QCheck2.Gen.(
      list_size (int_range 1 150)
        (pair (int_range 0 3) (pair (int_range 0 60) (int_range (-50) 50))))
    (fun script ->
      let pmem, heap, _, sched, bt = btree_env ~order:4 () in
      let ops = Btree.ops bt in
      let module IM = Map.Make (Int) in
      let model = ref IM.empty in
      let ok = ref true in
      in_thread pmem sched (fun () ->
          List.iter
            (fun (op, (key, v)) ->
              let v64 = Int64.of_int v in
              match op with
              | 0 ->
                  ops.Map_intf.set ~tid:0 ~key ~value:v64;
                  model := IM.add key v64 !model
              | 1 ->
                  ops.Map_intf.incr ~tid:0 ~key ~by:v64;
                  let old = Option.value (IM.find_opt key !model) ~default:0L in
                  model := IM.add key (Int64.add old v64) !model
              | 2 ->
                  let got = ops.Map_intf.remove ~tid:0 ~key in
                  if got <> IM.mem key !model then ok := false;
                  model := IM.remove key !model
              | _ ->
                  if ops.Map_intf.get ~tid:0 ~key <> IM.find_opt key !model then
                    ok := false)
            script);
      let dump =
        List.rev
          (Btree.fold_plain heap ~root:(Btree.root bt)
             (fun k v acc -> (k, v) :: acc)
             [])
      in
      !ok
      && dump = IM.bindings !model
      && Btree.check_plain heap ~root:(Btree.root bt) = Ok ())

let test_crash_mid_split_recovers () =
  (* Crash repeatedly while eight writers force splits; rollback must
     always restore a structurally valid tree with untorn values. *)
  let crashes_checked = ref 0 in
  List.iter
    (fun crash_at ->
      let pmem, heap, _, sched, bt = btree_env ~order:4 ~threads:8 () in
      for k = 0 to 199 do
        Btree.set_plain bt ~key:(k * 10) ~value:(Int64.of_int k)
      done;
      Pmem.persist_all pmem;
      let ops = Btree.ops bt in
      for tid = 0 to 7 do
        let rng = Rng.create ~seed:(tid + (7 * crash_at)) in
        ignore
          (Scheduler.spawn sched (fun () ->
               for _ = 1 to 300 do
                 let k = Rng.int rng 4000 in
                 ops.Map_intf.set ~tid ~key:k ~value:(Int64.of_int k)
               done)
            : int)
      done;
      Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
      let outcome = Scheduler.run ~crash_at_step:crash_at sched in
      Pmem.clear_step_hook pmem;
      (match outcome with
      | Scheduler.Crashed _ -> incr crashes_checked
      | _ -> Alcotest.fail "crash point not reached");
      Pmem.crash pmem Pmem.Rescue;
      Pmem.recover pmem;
      let size = (Pmem.config pmem).Config.region_size in
      let log_base = size - (1024 * 1024) in
      let heap' = Heap.attach pmem ~base:0 ~size:log_base in
      ignore heap;
      ignore (Atlas.Recovery.run ~heap:heap' ~log_base () : Atlas.Recovery.report);
      ignore (Heap_gc.collect heap');
      Alcotest.(check bool) "heap audit" true (Heap_gc.verify heap' = Ok ());
      (match Btree.check_plain heap' ~root:(Heap.get_root heap') with
      | Ok () -> ()
      | Error e -> Alcotest.failf "tree corrupt after crash %d: %s" crash_at e);
      (* Values are self-describing (value = key): detect torn writes. *)
      Btree.fold_plain heap' ~root:(Heap.get_root heap')
        (fun k v () ->
          if k mod 10 = 0 && k / 10 < 200 then
            (* preloaded keys: either original payload or an overwrite *)
            Alcotest.(check bool) "sane value" true
              (Int64.to_int v = k || Int64.to_int v = k / 10)
          else Alcotest.(check bool) "untorn" true (Int64.to_int v = k))
        ())
    [ 4_000; 9_000; 16_000; 25_000; 40_000 ];
  Alcotest.(check int) "five crashes exercised" 5 !crashes_checked

let suite =
  ( "btree",
    [
      case "basics: set/get/incr/overwrite" test_basics;
      case "splits grow height; traversal sorted" test_splits_grow_height;
      case "descending and random insert orders" test_descending_and_random_orders;
      case "remove and reinsert" test_remove;
      case "attach" test_attach;
      case "plain setup interoperates" test_set_plain_interops;
      case "concurrent writers" test_concurrent_writers;
      prop_btree_vs_model;
      slow_case "crash mid-split always recovers (5 crash points)"
        test_crash_mid_split_recovers;
    ] )
