(* Tests for the observability layer (lib/obs): header packing, ring
   wrap-around vs the online accumulators, the exposure envelope's
   time-above-budget integral, Chrome JSON escaping and well-formedness,
   the zero-allocation contracts, and the central determinism invariant
   — a traced workload run is sim-cycle identical to an untraced one. *)

open Helpers
module Event = Obs.Event
module Tracer = Obs.Tracer
module Chrome = Obs.Chrome
module Metrics = Obs.Metrics
module Runner = Workload.Runner

(* Drive the context closures from a script: each emitted event takes
   the next (ts, tid, dirty) triple. *)
let scripted tr triples =
  let q = ref triples in
  let peek f = match !q with [] -> f (0, -1, 0) | x :: _ -> f x in
  Tracer.set_clock tr (fun () -> peek (fun (ts, _, _) -> ts));
  Tracer.set_tid tr (fun () -> peek (fun (_, tid, _) -> tid));
  Tracer.set_dirty tr (fun () ->
      peek (fun (_, _, d) ->
          (* dirty is sampled last in [emit]; advance the script here *)
          (match !q with [] -> () | _ :: rest -> q := rest);
          d))

(* --- Event: header packing roundtrip --- *)

let test_pack_roundtrip () =
  List.iter
    (fun (code, tid, dirty) ->
      let w = Event.pack ~code ~tid ~dirty in
      Alcotest.(check int) "code" code (Event.code_of w);
      Alcotest.(check int) "tid" tid (Event.tid_of w);
      Alcotest.(check int) "dirty" dirty (Event.dirty_of w))
    [
      (Event.load, -1, 0);
      (Event.store, 0, 1);
      (Event.phase_end, 42, 123_456);
      (Event.ocs_commit, 4094, 1 lsl 30);
    ];
  (* clamping: negative dirty floors at 0, codes/tids mask cleanly *)
  let w = Event.pack ~code:Event.fence ~tid:7 ~dirty:(-5) in
  Alcotest.(check int) "negative dirty clamps" 0 (Event.dirty_of w)

(* --- Tracer: wrap-around loses raw events but no accounting --- *)

let feed tr n =
  (* a deterministic mixed stream: codes cycle, clocks advance, dirty
     ramps up and down *)
  let triples =
    List.init n (fun i -> (i * 10, i mod 3, (i * 7 mod 50) + 1))
  in
  scripted tr triples;
  List.iteri
    (fun i _ ->
      let code = i mod Event.n_codes in
      Tracer.emit tr ~code ~a:i ~b:(i land 15))
    triples

let test_ring_wrap () =
  let small = Tracer.create ~ring_cap:8 ~budget_lines:25 () in
  let large = Tracer.create ~ring_cap:4096 ~budget_lines:25 () in
  let n = 100 in
  feed small n;
  feed large n;
  Alcotest.(check int) "emitted small" n (Tracer.emitted small);
  Alcotest.(check int) "emitted large" n (Tracer.emitted large);
  Alcotest.(check int) "length small" 8 (Tracer.length small);
  Alcotest.(check int) "dropped small" (n - 8) (Tracer.dropped small);
  Alcotest.(check int) "length large" n (Tracer.length large);
  Alcotest.(check int) "dropped large" 0 (Tracer.dropped large);
  (* every online summary is identical despite 92 overwritten events *)
  for code = 0 to Event.n_codes - 1 do
    Alcotest.(check int)
      (Printf.sprintf "count %s" (Event.name code))
      (Tracer.count large code) (Tracer.count small code);
    Alcotest.(check int)
      (Printf.sprintf "cycles %s" (Event.name code))
      (Tracer.cycles_of large code)
      (Tracer.cycles_of small code)
  done;
  let es = Tracer.exposure small and el = Tracer.exposure large in
  Alcotest.(check int) "samples" el.Tracer.samples es.Tracer.samples;
  Alcotest.(check int) "peak" el.Tracer.peak_dirty es.Tracer.peak_dirty;
  Alcotest.(check (float 1e-9)) "mean" el.Tracer.mean_dirty es.Tracer.mean_dirty;
  Alcotest.(check int) "duration" el.Tracer.duration es.Tracer.duration;
  Alcotest.(check int) "time above"
    el.Tracer.time_above_budget es.Tracer.time_above_budget;
  (* the small ring's oldest survivor is event n-8 of the stream *)
  let oldest = Tracer.nth small 0 in
  Alcotest.(check int) "oldest ts" ((n - 8) * 10) oldest.Tracer.ts;
  Alcotest.(check int) "oldest a" (n - 8) oldest.Tracer.a;
  Alcotest.check_raises "nth out of range" (Invalid_argument "Tracer.nth")
    (fun () -> ignore (Tracer.nth small 8 : Tracer.event))

let test_exposure_budget () =
  let tr = Tracer.create ~ring_cap:64 ~budget_lines:10 () in
  (* envelope: dirty 5 @0, 15 @10, 8 @30, 12 @40, 0 @45.  The level is
     above budget on [10,30) and [40,45), so 25 cycles of the 45. *)
  scripted tr [ (0, 0, 5); (10, 0, 15); (30, 0, 8); (40, 0, 12); (45, 0, 0) ];
  for i = 1 to 5 do
    Tracer.emit tr ~code:Event.store ~a:i ~b:0
  done;
  let e = Tracer.exposure tr in
  Alcotest.(check int) "samples" 5 e.Tracer.samples;
  Alcotest.(check int) "peak" 15 e.Tracer.peak_dirty;
  Alcotest.(check (float 1e-9)) "mean" 8.0 e.Tracer.mean_dirty;
  Alcotest.(check int) "last" 0 e.Tracer.last_dirty;
  Alcotest.(check int) "duration" 45 e.Tracer.duration;
  Alcotest.(check int) "time above budget" 25 e.Tracer.time_above_budget;
  (* an out-of-order timestamp (a worker vclock behind the envelope)
     contributes a sample but never rewinds the time integral *)
  scripted tr [ (20, 1, 999) ];
  Tracer.emit tr ~code:Event.store ~a:6 ~b:0;
  let e = Tracer.exposure tr in
  Alcotest.(check int) "peak includes stale sample" 999 e.Tracer.peak_dirty;
  Alcotest.(check int) "duration unchanged" 45 e.Tracer.duration;
  Alcotest.(check int) "time above unchanged" 25 e.Tracer.time_above_budget

(* --- Chrome export --- *)

let test_chrome_escape () =
  Alcotest.(check string) "quotes/backslash" "a\\\"b\\\\c"
    (Chrome.escape "a\"b\\c");
  Alcotest.(check string) "newline/tab" "x\\ny\\tz" (Chrome.escape "x\ny\tz");
  Alcotest.(check string) "control chars" "\\u0001\\u001f"
    (Chrome.escape "\x01\x1f");
  Alcotest.(check string) "plain passthrough" "worker-3 [ocs]"
    (Chrome.escape "worker-3 [ocs]")

(* A minimal structural JSON scanner: strings must contain no raw
   control characters and only legal escapes; braces and brackets must
   balance outside strings.  Not a full parser — dune runtest also runs
   the strict RFC 8259 checker over a real [tsp trace --smoke] export —
   but enough to catch escaping bugs at the unit level. *)
let check_json_shape s =
  let depth = ref 0 and i = ref 0 and n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then Alcotest.fail "unterminated string";
          (match s.[!i] with
          | '"' -> closed := true
          | '\\' ->
              incr i;
              if !i >= n then Alcotest.fail "dangling escape";
              (match s.[!i] with
              | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
              | 'u' -> i := !i + 4
              | c -> Alcotest.failf "illegal escape \\%c" c)
          | c when Char.code c < 0x20 ->
              Alcotest.failf "raw control char %#x in string" (Char.code c)
          | _ -> ());
          if not !closed then incr i
        done
    | '{' | '[' -> incr depth
    | '}' | ']' -> decr depth
    | _ -> ());
    incr i
  done;
  Alcotest.(check int) "balanced braces/brackets" 0 !depth

let test_chrome_wellformed () =
  let tr = Tracer.create ~ring_cap:256 () in
  let clk = ref 0 in
  Tracer.set_clock tr (fun () -> incr clk; !clk);
  (* spans on two tracks (one the device), instants, a counter, and an
     orphaned end from a "wrapped" begin *)
  Tracer.set_tid tr (fun () -> 0);
  Tracer.emit tr ~code:Event.ocs_begin ~a:1 ~b:0;
  Tracer.emit tr ~code:Event.store ~a:64 ~b:12;
  Tracer.emit tr ~code:Event.ocs_commit ~a:1 ~b:1;
  Tracer.emit tr ~code:Event.ocs_commit ~a:99 ~b:2 (* orphaned end *);
  Tracer.set_tid tr (fun () -> -1);
  Tracer.emit tr ~code:Event.crash ~a:0 ~b:0;
  Tracer.phase_begin tr ~phase:Event.phase_log_scan;
  Tracer.phase_end tr ~phase:Event.phase_log_scan;
  Tracer.phase_begin tr ~phase:Event.phase_rollback (* left open: closer *);
  let hostile tid = Printf.sprintf "w\"%d\\\n\x02" tid in
  let s = Chrome.to_string ~thread_name:hostile tr in
  Alcotest.(check bool) "has traceEvents" true
    (String.length s > 16 && String.sub s 0 16 = "{\"traceEvents\":[");
  check_json_shape s

(* --- Zero-allocation contracts --- *)

let words_per_op f ops =
  let w0 = Gc.minor_words () in
  f ();
  (Gc.minor_words () -. w0) /. float_of_int ops

(* The tracing-disabled hot path: a device with no tracer attached must
   stay allocation-free through the [trace] match in every op. *)
let test_no_alloc_disabled () =
  let pmem = small_pmem () in
  let ops = 100_000 in
  (* warm the cache/closures outside the measured window *)
  Nvm.Pmem.store_int pmem 0 1;
  let per_op =
    words_per_op
      (fun () ->
        for i = 1 to ops do
          let addr = i * 8 land 0xFF8 in
          Nvm.Pmem.store_int pmem addr i;
          ignore (Nvm.Pmem.load_int pmem addr : int)
        done)
      (2 * ops)
  in
  if per_op > 0.01 then
    Alcotest.failf "tracing-disabled path allocates %.4f minor words/op" per_op

(* Emission itself: packed ints into a preallocated ring. *)
let test_no_alloc_emit () =
  let tr = Tracer.create ~ring_cap:1024 ~budget_lines:100 () in
  let clk = ref 0 in
  Tracer.set_clock tr (fun () -> incr clk; !clk);
  Tracer.set_tid tr (fun () -> 2);
  Tracer.set_dirty tr (fun () -> !clk land 255);
  let ops = 100_000 in
  Tracer.emit tr ~code:Event.store ~a:0 ~b:0;
  let per_op =
    words_per_op
      (fun () ->
        for i = 1 to ops do
          Tracer.emit tr ~code:Event.store ~a:i ~b:4
        done)
      ops
  in
  if per_op > 0.01 then
    Alcotest.failf "emit allocates %.4f minor words/op" per_op

(* --- Determinism: traced run == untraced run, through a crash --- *)

let traced_config tracer =
  {
    (Runner.calibrated_config
       { Nvm.Config.desktop with Nvm.Config.cache_lines = 512 })
    with
    Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only;
    workload = Runner.Counters { h_keys = 64; preload = true };
    threads = 2;
    iterations = 150;
    n_buckets = 128;
    log_mib = 1;
    crash_at_step = Some 12_000;
    tracer;
  }

let test_traced_identical () =
  let off = Runner.run (traced_config None) in
  let tr = Tracer.create ~ring_cap:4096 () in
  let on = Runner.run (traced_config (Some tr)) in
  Alcotest.(check bool) "untraced consistent" true (Runner.consistent off);
  Alcotest.(check bool) "traced consistent" true (Runner.consistent on);
  Alcotest.(check int) "identical sim cycles" off.Runner.elapsed_cycles
    on.Runner.elapsed_cycles;
  Alcotest.(check bool) "events were emitted" true (Tracer.emitted tr > 0);
  (* the run crashed and recovered, so the trace saw it *)
  Alcotest.(check int) "one crash" 1 (Tracer.count tr Event.crash);
  Alcotest.(check int) "one recover" 1 (Tracer.count tr Event.recover);
  Alcotest.(check bool) "log scan phase timed" true
    (Tracer.phase_cycles tr Event.phase_log_scan > 0)

(* --- Metrics --- *)

let test_metrics_counts () =
  let tr = Tracer.create ~ring_cap:64 () in
  List.iter
    (fun (code, b) -> Tracer.emit tr ~code ~a:0 ~b)
    [
      (Event.load, 3); (Event.load, 4); (Event.store, 5);
      (Event.flush, 7); (Event.flush, 7); (Event.flush, 7);
      (Event.fence, 9);
      (Event.ocs_begin, 0); (Event.ocs_begin, 0);
      (Event.ocs_commit, 0); (Event.ocs_commit, 0);
      (Event.log_append, 0); (Event.log_append, 0); (Event.log_append, 0);
      (Event.log_append, 0);
    ];
  let m = Metrics.of_tracer tr in
  Alcotest.(check int) "loads" 2 m.Metrics.loads;
  Alcotest.(check int) "stores" 1 m.Metrics.stores;
  Alcotest.(check int) "flushes" 3 m.Metrics.flushes;
  Alcotest.(check int) "commits" 2 m.Metrics.ocs_commits;
  Alcotest.(check (float 1e-9)) "fences/commit" 0.5 m.Metrics.fences_per_commit;
  Alcotest.(check (float 1e-9)) "flushes/commit" 1.5
    m.Metrics.flushes_per_commit;
  Alcotest.(check (float 1e-9)) "appends/commit" 2.0
    m.Metrics.appends_per_commit;
  Alcotest.(check int) "load cycles" 7
    (List.assoc "load" m.Metrics.op_cycles);
  Alcotest.(check int) "flush cycles" 21
    (List.assoc "flush" m.Metrics.op_cycles)

(* The headline bugfix: commit-free designs (skip list, NVTraverse,
   delay-free) never emit an OCS commit, so the per-commit psync rates
   divide by zero ops — the report used to show nothing at all for the
   very designs whose flush economy is the point.  With [completed_ops]
   supplied, the per-op rates carry the signal; the per-commit ones stay
   defined (0.0) and the printer keys on whichever denominator is
   nonzero. *)
let test_metrics_zero_commit () =
  let tr = Tracer.create ~ring_cap:64 () in
  List.iter
    (fun (code, b) -> Tracer.emit tr ~code ~a:0 ~b)
    [
      (Event.flush, 7); (Event.flush, 7); (Event.flush, 7); (Event.flush, 7);
      (Event.fence, 9); (Event.fence, 9);
    ];
  let m = Metrics.of_tracer ~completed_ops:8 tr in
  Alcotest.(check int) "no commits" 0 m.Metrics.ocs_commits;
  Alcotest.(check int) "completed ops recorded" 8 m.Metrics.completed_ops;
  Alcotest.(check (float 1e-9)) "flushes/op" 0.5 m.Metrics.flushes_per_op;
  Alcotest.(check (float 1e-9)) "fences/op" 0.25 m.Metrics.fences_per_op;
  Alcotest.(check (float 1e-9)) "appends/op" 0.0 m.Metrics.appends_per_op;
  Alcotest.(check (float 1e-9)) "flushes/commit defined as 0" 0.0
    m.Metrics.flushes_per_commit;
  (* The render must surface the per-op line (and only it). *)
  let rendered = Fmt.str "%a" Metrics.pp m in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s
                   && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-op line printed" true
    (contains rendered "per completed op");
  Alcotest.(check bool) "per-commit line suppressed" false
    (contains rendered "per commit");
  (* And without any denominator at all, rates are all zero, not NaN. *)
  let m0 = Metrics.of_tracer tr in
  Alcotest.(check (float 1e-9)) "no denominator: flushes/op 0" 0.0
    m0.Metrics.flushes_per_op

(* --- Json: the shared writer/reader behind every artifact --- *)

(* One document exercising every value form plus the hostile cases: a
   string full of quotes/backslashes/control chars, and a NaN (which
   must render as null — the strict snapshot checker rejects bare nan
   tokens).  The writer's output must satisfy the structural scanner
   and parse back through the reader with the same shape. *)
let test_json_writer_roundtrip () =
  let module J = Obs.Json in
  let j = J.create () in
  J.obj_open j;
  J.key j "name";
  J.str j "w\"q\\b\nnl\x02ctl";
  J.key j "n";
  J.int j (-42);
  J.key j "nan";
  J.float j Float.nan;
  J.key j "rate";
  J.float j 1.25;
  J.key j "ok";
  J.bool j true;
  J.key j "nil";
  J.null j;
  J.key j "xs";
  J.arr_open j;
  List.iter (J.int j) [ 1; 2; 3 ];
  J.arr_close j;
  J.key j "nested";
  J.obj_open j;
  J.key j "empty";
  J.arr_open j;
  J.arr_close j;
  J.obj_close j;
  J.obj_close j;
  let s = J.contents j in
  check_json_shape s;
  match J.parse s with
  | Error e -> Alcotest.failf "writer output rejected by reader: %s" e
  | Ok doc ->
      (match J.member "nan" doc with
      | Some J.Null -> ()
      | _ -> Alcotest.fail "NaN must render as null");
      (match J.member "name" doc with
      | Some (J.Str _) -> ()
      | _ -> Alcotest.fail "hostile string survives");
      (match J.member "xs" doc with
      | Some (J.Arr [ J.Num a; J.Num b; J.Num c ]) ->
          Alcotest.(check (float 1e-9)) "array elements" 6.0 (a +. b +. c)
      | _ -> Alcotest.fail "array shape");
      (match J.member "rate" doc with
      | Some (J.Num f) -> Alcotest.(check (float 1e-9)) "fixed-point" 1.25 f
      | _ -> Alcotest.fail "float member")

(* --- Hist: bucketed quantiles vs the exact nearest-rank values --- *)

(* The histogram promises <= 6.25% relative bucket error.  Feed it a
   log-spread sample set and compare every headline quantile against
   the exact nearest-rank answer from Workload.Report.percentiles (the
   same convention Hist.quantile documents). *)
let test_hist_quantile_error () =
  let rng = Random.State.make [| 4242 |] in
  let n = 10_000 in
  let samples =
    Array.init n (fun _ ->
        let octave = Random.State.int rng 14 in
        let base = 1 lsl octave in
        base + Random.State.int rng base)
  in
  let h = Obs.Hist.create () in
  Array.iter (Obs.Hist.add h) samples;
  Alcotest.(check int) "exact count" n (Obs.Hist.count h);
  Alcotest.(check int) "exact sum"
    (Array.fold_left ( + ) 0 samples)
    (Obs.Hist.sum h);
  List.iter
    (fun (q, exact) ->
      let est = Obs.Hist.quantile h q in
      let err =
        Float.abs (float_of_int est -. float_of_int exact)
        /. float_of_int (max exact 1)
      in
      if err > 0.0625 then
        Alcotest.failf "p%g: bucketed %d vs exact %d (%.2f%% error)"
          (q *. 100.) est exact (100. *. err))
    (Workload.Report.percentiles (Array.copy samples) [ 0.5; 0.9; 0.99; 0.999 ])

(* Hist.add sits on the tracer emit path and the service latency sink,
   so it carries the same Gc.minor_words contract as emit itself. *)
let test_hist_no_alloc () =
  let h = Obs.Hist.create () in
  let ops = 100_000 in
  Obs.Hist.add h 1 (* warm outside the measured window *);
  let per_op =
    words_per_op
      (fun () ->
        for i = 1 to ops do
          Obs.Hist.add h (i * 2654435761 land 0xFFFFF)
        done)
      ops
  in
  if per_op > 0.01 then
    Alcotest.failf "Hist.add allocates %.4f minor words/op" per_op;
  Alcotest.(check int) "no samples dropped" (ops + 1) (Obs.Hist.count h)

(* --- Signature: stable identity for "the same bug" --- *)

let test_signature_normalize () =
  let module S = Obs.Signature in
  Alcotest.(check string) "digit runs collapse"
    "counter #: expected # found #"
    (S.normalize "counter 123: expected 40 found 7");
  let once = S.normalize "k9 v10 #already" in
  Alcotest.(check string) "idempotent" once (S.normalize once);
  Alcotest.(check string) "shape buckets" "few" (S.shape_of_count 3);
  Alcotest.(check string) "shape none floors" "none" (S.shape_of_count (-1));
  let s1 =
    S.make ~klass:"invariant" ~phase:"full-discard"
      ~invariant:"counter 12: expected 40 found 13"
      ~shape:(S.shape_of_count 3)
  in
  let s2 =
    S.make ~klass:"invariant" ~phase:"full-discard"
      ~invariant:"counter 999: expected 1 found 0"
      ~shape:(S.shape_of_count 4)
  in
  Alcotest.(check bool) "per-key digits don't distinguish" true
    (S.equal s1 s2);
  let s3 =
    S.make ~klass:"invariant" ~phase:"torn-lines"
      ~invariant:"counter 12: expected 40 found 13"
      ~shape:(S.shape_of_count 3)
  in
  Alcotest.(check bool) "phase does distinguish" false (S.equal s1 s3);
  Alcotest.(check int) "hash is 16 hex digits" 16
    (String.length s1.S.hash);
  String.iter
    (function
      | '0' .. '9' | 'a' .. 'f' -> ()
      | c -> Alcotest.failf "non-hex hash char %C" c)
    s1.S.hash;
  (* feeding a signature's own (already normalized) fields back yields
     the identical signature — make is a fixpoint *)
  let s1' =
    S.make ~klass:s1.S.klass ~phase:s1.S.phase ~invariant:s1.S.invariant
      ~shape:s1.S.shape
  in
  Alcotest.(check bool) "make is a fixpoint" true (S.equal s1 s1')

(* The `faults --smoke` base: small cache so discard-class faults
   genuinely lose lines (same rationale as test_faults.ml). *)
module FM = Nvm.Fault_model
module FI = Workload.Fault_injector

let faults_base =
  let platform = { Nvm.Config.desktop with Nvm.Config.cache_lines = 512 } in
  {
    (Runner.calibrated_config platform) with
    Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only;
    workload = Runner.Counters { h_keys = 256; preload = true };
    threads = 4;
    iterations = 200;
    n_buckets = 512;
    log_mib = 1;
  }

(* The ISSUE's headline property: the same bug observed at two
   different seeds AND two different crash points hashes to the same
   signature — triage dedupes a thousand-point campaign to its
   distinct failure modes.  Log-only under Full_discard is the
   documented-expected violation used by the smoke preset. *)
let test_signature_crash_point_independent () =
  let spec =
    { (FI.default_spec faults_base) with
      FI.fault_models = [ Some FM.Full_discard ] }
  in
  (* two sightings of the eq1 ledger bug at different seeds AND crash
     points, plus one sighting of the distinct eq2 histogram bug *)
  let o1 =
    FI.one spec ~fault:(Some FM.Full_discard) ~seed:11 ~crash_step:11_000
  in
  let o2 =
    FI.one spec ~fault:(Some FM.Full_discard) ~seed:7 ~crash_step:15_000
  in
  let o3 =
    FI.one spec ~fault:(Some FM.Full_discard) ~seed:3 ~crash_step:6_000
  in
  Alcotest.(check bool) "all three crash points violate" true
    (o1.FI.violation && o2.FI.violation && o3.FI.violation);
  Alcotest.(check bool) "crash steps differ" true
    (o1.FI.crash_step <> o2.FI.crash_step);
  match (FI.signature_of o1, FI.signature_of o2, FI.signature_of o3) with
  | Some s1, Some s2, Some s3 ->
      Alcotest.(check bool) "same bug, same signature across seed and crash"
        true
        (Obs.Signature.equal s1 s2);
      Alcotest.(check bool) "different bug, different signature" false
        (Obs.Signature.equal s1 s3)
  | _ -> Alcotest.fail "violating outcomes must carry signatures"

(* --- Artifact: byte-identity across --jobs, replay-argv hygiene --- *)

(* The results document is a pure function of the spec: fanning the
   same campaign over 1, 2 and 4 domains must render byte-identical
   artifacts (the dune-level gate checks the full CLI path; this pins
   the library layer). *)
let test_artifact_jobs_identical () =
  let spec =
    { (FI.default_spec faults_base) with
      FI.runs = 3; min_step = 2_000; max_step = 12_000; campaign_seed = 7 }
  in
  let doc jobs =
    let s = FI.run ~jobs spec in
    Obs.Artifact.results ~subcommand:"faults" ~body:(fun j ->
        Obs.Json.key j "campaigns";
        Obs.Json.arr_open j;
        FI.to_json j s;
        Obs.Json.arr_close j)
  in
  let d1 = doc 1 in
  Alcotest.(check string) "jobs 1 = jobs 2" d1 (doc 2);
  Alcotest.(check string) "jobs 1 = jobs 4" d1 (doc 4);
  match Obs.Json.parse d1 with
  | Error e -> Alcotest.failf "results document malformed: %s" e
  | Ok v -> (
      match Obs.Json.member "schema" v with
      | Some (Obs.Json.Str s) ->
          Alcotest.(check string) "schema stamp" Obs.Artifact.results_schema s
      | _ -> Alcotest.fail "results document carries its schema")

(* Run-only knobs must never reach the stored replay argv: --jobs/-j,
   --artifact-dir and --replay are dropped in both "--flag v" and
   "--flag=v" spellings, campaign flags pass through untouched. *)
let test_artifact_replay_args () =
  Alcotest.(check (list string))
    "run-only flags stripped"
    [ "faults"; "--smoke"; "--seed=7"; "--shrink" ]
    (Obs.Artifact.replay_args
       [|
         "tsp"; "faults"; "--smoke"; "--jobs"; "4"; "--artifact-dir"; "out";
         "--seed=7"; "-j"; "2"; "--replay=m.json"; "--shrink";
         "--artifact-dir=o2";
       |])

let suite =
  ( "obs",
    [
      case "event/pack-roundtrip" test_pack_roundtrip;
      case "tracer/ring-wrap" test_ring_wrap;
      case "tracer/exposure-budget" test_exposure_budget;
      case "chrome/escape" test_chrome_escape;
      case "chrome/wellformed-hostile-names" test_chrome_wellformed;
      case "tracer/no-alloc-disabled" test_no_alloc_disabled;
      case "tracer/no-alloc-emit" test_no_alloc_emit;
      case "runner/traced-identical" test_traced_identical;
      case "metrics/counts" test_metrics_counts;
      case "metrics/zero-commit-per-op" test_metrics_zero_commit;
      case "json/writer-roundtrip-hostile" test_json_writer_roundtrip;
      case "hist/quantile-error-bound" test_hist_quantile_error;
      case "hist/no-alloc-add" test_hist_no_alloc;
      case "signature/normalize-idempotent" test_signature_normalize;
      case "signature/crash-point-independent"
        test_signature_crash_point_independent;
      case "artifact/jobs-byte-identical" test_artifact_jobs_identical;
      case "artifact/replay-args-stripped" test_artifact_replay_args;
    ] )
