(* Tests for the observability layer (lib/obs): header packing, ring
   wrap-around vs the online accumulators, the exposure envelope's
   time-above-budget integral, Chrome JSON escaping and well-formedness,
   the zero-allocation contracts, and the central determinism invariant
   — a traced workload run is sim-cycle identical to an untraced one. *)

open Helpers
module Event = Obs.Event
module Tracer = Obs.Tracer
module Chrome = Obs.Chrome
module Metrics = Obs.Metrics
module Runner = Workload.Runner

(* Drive the context closures from a script: each emitted event takes
   the next (ts, tid, dirty) triple. *)
let scripted tr triples =
  let q = ref triples in
  let peek f = match !q with [] -> f (0, -1, 0) | x :: _ -> f x in
  Tracer.set_clock tr (fun () -> peek (fun (ts, _, _) -> ts));
  Tracer.set_tid tr (fun () -> peek (fun (_, tid, _) -> tid));
  Tracer.set_dirty tr (fun () ->
      peek (fun (_, _, d) ->
          (* dirty is sampled last in [emit]; advance the script here *)
          (match !q with [] -> () | _ :: rest -> q := rest);
          d))

(* --- Event: header packing roundtrip --- *)

let test_pack_roundtrip () =
  List.iter
    (fun (code, tid, dirty) ->
      let w = Event.pack ~code ~tid ~dirty in
      Alcotest.(check int) "code" code (Event.code_of w);
      Alcotest.(check int) "tid" tid (Event.tid_of w);
      Alcotest.(check int) "dirty" dirty (Event.dirty_of w))
    [
      (Event.load, -1, 0);
      (Event.store, 0, 1);
      (Event.phase_end, 42, 123_456);
      (Event.ocs_commit, 4094, 1 lsl 30);
    ];
  (* clamping: negative dirty floors at 0, codes/tids mask cleanly *)
  let w = Event.pack ~code:Event.fence ~tid:7 ~dirty:(-5) in
  Alcotest.(check int) "negative dirty clamps" 0 (Event.dirty_of w)

(* --- Tracer: wrap-around loses raw events but no accounting --- *)

let feed tr n =
  (* a deterministic mixed stream: codes cycle, clocks advance, dirty
     ramps up and down *)
  let triples =
    List.init n (fun i -> (i * 10, i mod 3, (i * 7 mod 50) + 1))
  in
  scripted tr triples;
  List.iteri
    (fun i _ ->
      let code = i mod Event.n_codes in
      Tracer.emit tr ~code ~a:i ~b:(i land 15))
    triples

let test_ring_wrap () =
  let small = Tracer.create ~ring_cap:8 ~budget_lines:25 () in
  let large = Tracer.create ~ring_cap:4096 ~budget_lines:25 () in
  let n = 100 in
  feed small n;
  feed large n;
  Alcotest.(check int) "emitted small" n (Tracer.emitted small);
  Alcotest.(check int) "emitted large" n (Tracer.emitted large);
  Alcotest.(check int) "length small" 8 (Tracer.length small);
  Alcotest.(check int) "dropped small" (n - 8) (Tracer.dropped small);
  Alcotest.(check int) "length large" n (Tracer.length large);
  Alcotest.(check int) "dropped large" 0 (Tracer.dropped large);
  (* every online summary is identical despite 92 overwritten events *)
  for code = 0 to Event.n_codes - 1 do
    Alcotest.(check int)
      (Printf.sprintf "count %s" (Event.name code))
      (Tracer.count large code) (Tracer.count small code);
    Alcotest.(check int)
      (Printf.sprintf "cycles %s" (Event.name code))
      (Tracer.cycles_of large code)
      (Tracer.cycles_of small code)
  done;
  let es = Tracer.exposure small and el = Tracer.exposure large in
  Alcotest.(check int) "samples" el.Tracer.samples es.Tracer.samples;
  Alcotest.(check int) "peak" el.Tracer.peak_dirty es.Tracer.peak_dirty;
  Alcotest.(check (float 1e-9)) "mean" el.Tracer.mean_dirty es.Tracer.mean_dirty;
  Alcotest.(check int) "duration" el.Tracer.duration es.Tracer.duration;
  Alcotest.(check int) "time above"
    el.Tracer.time_above_budget es.Tracer.time_above_budget;
  (* the small ring's oldest survivor is event n-8 of the stream *)
  let oldest = Tracer.nth small 0 in
  Alcotest.(check int) "oldest ts" ((n - 8) * 10) oldest.Tracer.ts;
  Alcotest.(check int) "oldest a" (n - 8) oldest.Tracer.a;
  Alcotest.check_raises "nth out of range" (Invalid_argument "Tracer.nth")
    (fun () -> ignore (Tracer.nth small 8 : Tracer.event))

let test_exposure_budget () =
  let tr = Tracer.create ~ring_cap:64 ~budget_lines:10 () in
  (* envelope: dirty 5 @0, 15 @10, 8 @30, 12 @40, 0 @45.  The level is
     above budget on [10,30) and [40,45), so 25 cycles of the 45. *)
  scripted tr [ (0, 0, 5); (10, 0, 15); (30, 0, 8); (40, 0, 12); (45, 0, 0) ];
  for i = 1 to 5 do
    Tracer.emit tr ~code:Event.store ~a:i ~b:0
  done;
  let e = Tracer.exposure tr in
  Alcotest.(check int) "samples" 5 e.Tracer.samples;
  Alcotest.(check int) "peak" 15 e.Tracer.peak_dirty;
  Alcotest.(check (float 1e-9)) "mean" 8.0 e.Tracer.mean_dirty;
  Alcotest.(check int) "last" 0 e.Tracer.last_dirty;
  Alcotest.(check int) "duration" 45 e.Tracer.duration;
  Alcotest.(check int) "time above budget" 25 e.Tracer.time_above_budget;
  (* an out-of-order timestamp (a worker vclock behind the envelope)
     contributes a sample but never rewinds the time integral *)
  scripted tr [ (20, 1, 999) ];
  Tracer.emit tr ~code:Event.store ~a:6 ~b:0;
  let e = Tracer.exposure tr in
  Alcotest.(check int) "peak includes stale sample" 999 e.Tracer.peak_dirty;
  Alcotest.(check int) "duration unchanged" 45 e.Tracer.duration;
  Alcotest.(check int) "time above unchanged" 25 e.Tracer.time_above_budget

(* --- Chrome export --- *)

let test_chrome_escape () =
  Alcotest.(check string) "quotes/backslash" "a\\\"b\\\\c"
    (Chrome.escape "a\"b\\c");
  Alcotest.(check string) "newline/tab" "x\\ny\\tz" (Chrome.escape "x\ny\tz");
  Alcotest.(check string) "control chars" "\\u0001\\u001f"
    (Chrome.escape "\x01\x1f");
  Alcotest.(check string) "plain passthrough" "worker-3 [ocs]"
    (Chrome.escape "worker-3 [ocs]")

(* A minimal structural JSON scanner: strings must contain no raw
   control characters and only legal escapes; braces and brackets must
   balance outside strings.  Not a full parser — dune runtest also runs
   the strict RFC 8259 checker over a real [tsp trace --smoke] export —
   but enough to catch escaping bugs at the unit level. *)
let check_json_shape s =
  let depth = ref 0 and i = ref 0 and n = String.length s in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then Alcotest.fail "unterminated string";
          (match s.[!i] with
          | '"' -> closed := true
          | '\\' ->
              incr i;
              if !i >= n then Alcotest.fail "dangling escape";
              (match s.[!i] with
              | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> ()
              | 'u' -> i := !i + 4
              | c -> Alcotest.failf "illegal escape \\%c" c)
          | c when Char.code c < 0x20 ->
              Alcotest.failf "raw control char %#x in string" (Char.code c)
          | _ -> ());
          if not !closed then incr i
        done
    | '{' | '[' -> incr depth
    | '}' | ']' -> decr depth
    | _ -> ());
    incr i
  done;
  Alcotest.(check int) "balanced braces/brackets" 0 !depth

let test_chrome_wellformed () =
  let tr = Tracer.create ~ring_cap:256 () in
  let clk = ref 0 in
  Tracer.set_clock tr (fun () -> incr clk; !clk);
  (* spans on two tracks (one the device), instants, a counter, and an
     orphaned end from a "wrapped" begin *)
  Tracer.set_tid tr (fun () -> 0);
  Tracer.emit tr ~code:Event.ocs_begin ~a:1 ~b:0;
  Tracer.emit tr ~code:Event.store ~a:64 ~b:12;
  Tracer.emit tr ~code:Event.ocs_commit ~a:1 ~b:1;
  Tracer.emit tr ~code:Event.ocs_commit ~a:99 ~b:2 (* orphaned end *);
  Tracer.set_tid tr (fun () -> -1);
  Tracer.emit tr ~code:Event.crash ~a:0 ~b:0;
  Tracer.phase_begin tr ~phase:Event.phase_log_scan;
  Tracer.phase_end tr ~phase:Event.phase_log_scan;
  Tracer.phase_begin tr ~phase:Event.phase_rollback (* left open: closer *);
  let hostile tid = Printf.sprintf "w\"%d\\\n\x02" tid in
  let s = Chrome.to_string ~thread_name:hostile tr in
  Alcotest.(check bool) "has traceEvents" true
    (String.length s > 16 && String.sub s 0 16 = "{\"traceEvents\":[");
  check_json_shape s

(* --- Zero-allocation contracts --- *)

let words_per_op f ops =
  let w0 = Gc.minor_words () in
  f ();
  (Gc.minor_words () -. w0) /. float_of_int ops

(* The tracing-disabled hot path: a device with no tracer attached must
   stay allocation-free through the [trace] match in every op. *)
let test_no_alloc_disabled () =
  let pmem = small_pmem () in
  let ops = 100_000 in
  (* warm the cache/closures outside the measured window *)
  Nvm.Pmem.store_int pmem 0 1;
  let per_op =
    words_per_op
      (fun () ->
        for i = 1 to ops do
          let addr = i * 8 land 0xFF8 in
          Nvm.Pmem.store_int pmem addr i;
          ignore (Nvm.Pmem.load_int pmem addr : int)
        done)
      (2 * ops)
  in
  if per_op > 0.01 then
    Alcotest.failf "tracing-disabled path allocates %.4f minor words/op" per_op

(* Emission itself: packed ints into a preallocated ring. *)
let test_no_alloc_emit () =
  let tr = Tracer.create ~ring_cap:1024 ~budget_lines:100 () in
  let clk = ref 0 in
  Tracer.set_clock tr (fun () -> incr clk; !clk);
  Tracer.set_tid tr (fun () -> 2);
  Tracer.set_dirty tr (fun () -> !clk land 255);
  let ops = 100_000 in
  Tracer.emit tr ~code:Event.store ~a:0 ~b:0;
  let per_op =
    words_per_op
      (fun () ->
        for i = 1 to ops do
          Tracer.emit tr ~code:Event.store ~a:i ~b:4
        done)
      ops
  in
  if per_op > 0.01 then
    Alcotest.failf "emit allocates %.4f minor words/op" per_op

(* --- Determinism: traced run == untraced run, through a crash --- *)

let traced_config tracer =
  {
    (Runner.calibrated_config
       { Nvm.Config.desktop with Nvm.Config.cache_lines = 512 })
    with
    Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only;
    workload = Runner.Counters { h_keys = 64; preload = true };
    threads = 2;
    iterations = 150;
    n_buckets = 128;
    log_mib = 1;
    crash_at_step = Some 12_000;
    tracer;
  }

let test_traced_identical () =
  let off = Runner.run (traced_config None) in
  let tr = Tracer.create ~ring_cap:4096 () in
  let on = Runner.run (traced_config (Some tr)) in
  Alcotest.(check bool) "untraced consistent" true (Runner.consistent off);
  Alcotest.(check bool) "traced consistent" true (Runner.consistent on);
  Alcotest.(check int) "identical sim cycles" off.Runner.elapsed_cycles
    on.Runner.elapsed_cycles;
  Alcotest.(check bool) "events were emitted" true (Tracer.emitted tr > 0);
  (* the run crashed and recovered, so the trace saw it *)
  Alcotest.(check int) "one crash" 1 (Tracer.count tr Event.crash);
  Alcotest.(check int) "one recover" 1 (Tracer.count tr Event.recover);
  Alcotest.(check bool) "log scan phase timed" true
    (Tracer.phase_cycles tr Event.phase_log_scan > 0)

(* --- Metrics --- *)

let test_metrics_counts () =
  let tr = Tracer.create ~ring_cap:64 () in
  List.iter
    (fun (code, b) -> Tracer.emit tr ~code ~a:0 ~b)
    [
      (Event.load, 3); (Event.load, 4); (Event.store, 5);
      (Event.flush, 7); (Event.flush, 7); (Event.flush, 7);
      (Event.fence, 9);
      (Event.ocs_begin, 0); (Event.ocs_begin, 0);
      (Event.ocs_commit, 0); (Event.ocs_commit, 0);
      (Event.log_append, 0); (Event.log_append, 0); (Event.log_append, 0);
      (Event.log_append, 0);
    ];
  let m = Metrics.of_tracer tr in
  Alcotest.(check int) "loads" 2 m.Metrics.loads;
  Alcotest.(check int) "stores" 1 m.Metrics.stores;
  Alcotest.(check int) "flushes" 3 m.Metrics.flushes;
  Alcotest.(check int) "commits" 2 m.Metrics.ocs_commits;
  Alcotest.(check (float 1e-9)) "fences/commit" 0.5 m.Metrics.fences_per_commit;
  Alcotest.(check (float 1e-9)) "flushes/commit" 1.5
    m.Metrics.flushes_per_commit;
  Alcotest.(check (float 1e-9)) "appends/commit" 2.0
    m.Metrics.appends_per_commit;
  Alcotest.(check int) "load cycles" 7
    (List.assoc "load" m.Metrics.op_cycles);
  Alcotest.(check int) "flush cycles" 21
    (List.assoc "flush" m.Metrics.op_cycles)

(* The headline bugfix: commit-free designs (skip list, NVTraverse,
   delay-free) never emit an OCS commit, so the per-commit psync rates
   divide by zero ops — the report used to show nothing at all for the
   very designs whose flush economy is the point.  With [completed_ops]
   supplied, the per-op rates carry the signal; the per-commit ones stay
   defined (0.0) and the printer keys on whichever denominator is
   nonzero. *)
let test_metrics_zero_commit () =
  let tr = Tracer.create ~ring_cap:64 () in
  List.iter
    (fun (code, b) -> Tracer.emit tr ~code ~a:0 ~b)
    [
      (Event.flush, 7); (Event.flush, 7); (Event.flush, 7); (Event.flush, 7);
      (Event.fence, 9); (Event.fence, 9);
    ];
  let m = Metrics.of_tracer ~completed_ops:8 tr in
  Alcotest.(check int) "no commits" 0 m.Metrics.ocs_commits;
  Alcotest.(check int) "completed ops recorded" 8 m.Metrics.completed_ops;
  Alcotest.(check (float 1e-9)) "flushes/op" 0.5 m.Metrics.flushes_per_op;
  Alcotest.(check (float 1e-9)) "fences/op" 0.25 m.Metrics.fences_per_op;
  Alcotest.(check (float 1e-9)) "appends/op" 0.0 m.Metrics.appends_per_op;
  Alcotest.(check (float 1e-9)) "flushes/commit defined as 0" 0.0
    m.Metrics.flushes_per_commit;
  (* The render must surface the per-op line (and only it). *)
  let rendered = Fmt.str "%a" Metrics.pp m in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s
                   && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "per-op line printed" true
    (contains rendered "per completed op");
  Alcotest.(check bool) "per-commit line suppressed" false
    (contains rendered "per commit");
  (* And without any denominator at all, rates are all zero, not NaN. *)
  let m0 = Metrics.of_tracer tr in
  Alcotest.(check (float 1e-9)) "no denominator: flushes/op 0" 0.0
    m0.Metrics.flushes_per_op

let suite =
  ( "obs",
    [
      case "event/pack-roundtrip" test_pack_roundtrip;
      case "tracer/ring-wrap" test_ring_wrap;
      case "tracer/exposure-budget" test_exposure_budget;
      case "chrome/escape" test_chrome_escape;
      case "chrome/wellformed-hostile-names" test_chrome_wellformed;
      case "tracer/no-alloc-disabled" test_no_alloc_disabled;
      case "tracer/no-alloc-emit" test_no_alloc_emit;
      case "runner/traced-identical" test_traced_identical;
      case "metrics/counts" test_metrics_counts;
      case "metrics/zero-commit-per-op" test_metrics_zero_commit;
    ] )
