(* Tests for the durable-linearizability checker (lib/check) and the
   workload-layer fixes that rode along with it: nearest-rank
   percentiles, the Ivec latency/recording sink, recovery verdict
   formatting, and the fault-injector's verdict ledger. *)

open Helpers
module History = Check.History
module Dl = Check.Dl
module Ivec = Check.Ivec
module Model = Tsp_maps.Model
module Snapshot = Tsp_maps.Snapshot
module Map_intf = Tsp_maps.Map_intf
module Skiplist = Tsp_maps.Lockfree_skiplist
module Hashmap = Tsp_maps.Chained_hashmap
module Recovery = Atlas.Recovery
module Runner = Workload.Runner
module Report = Workload.Report
module FI = Workload.Fault_injector
module CC = Workload.Check_campaign

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Report.percentiles: nearest-rank, Int.compare --- *)

let pcts samples qs = List.map snd (Report.percentiles samples qs)

let test_percentiles_small () =
  Alcotest.(check (list int))
    "n=1: every quantile is the sample" [ 42; 42; 42; 42 ]
    (pcts [| 42 |] [ 0.0; 0.5; 0.99; 1.0 ]);
  Alcotest.(check (list int))
    "n=2: median is the lower sample, p99/max the upper" [ 10; 10; 20; 20 ]
    (pcts [| 20; 10 |] [ 0.0; 0.5; 0.99; 1.0 ]);
  Alcotest.(check (list int)) "empty input" []
    (pcts [||] [ 0.5; 0.99 ])

let test_percentiles_fixture () =
  (* Ten samples, unsorted on purpose.  Nearest-rank p99 of ten samples
     is the 10th order statistic; the pre-fix truncating rank returned
     the 9th. *)
  let samples = [| 7; 1; 10; 3; 9; 2; 8; 4; 6; 5 |] in
  Alcotest.(check (list int))
    "p50/p90/p99/p100 of 1..10" [ 5; 9; 10; 10 ]
    (pcts samples [ 0.5; 0.9; 0.99; 1.0 ])

(* --- Ivec: behaviour and the zero-allocation contract --- *)

let test_ivec_basic () =
  let v = Ivec.create ~capacity:2 () in
  Alcotest.(check int) "empty" 0 (Ivec.length v);
  Ivec.push v 10;
  Ivec.push v 20;
  Ivec.push v 30 (* forces a doubling *);
  Alcotest.(check int) "length" 3 (Ivec.length v);
  Alcotest.(check bool) "grew" true (Ivec.capacity v >= 3);
  Alcotest.(check int) "get" 20 (Ivec.get v 1);
  Ivec.set v 1 99;
  Alcotest.(check int) "set" 99 (Ivec.get v 1);
  Alcotest.(check (array int)) "to_array" [| 10; 99; 30 |] (Ivec.to_array v);
  check_raises_invalid "get out of bounds" (fun () -> ignore (Ivec.get v 3));
  check_raises_invalid "set out of bounds" (fun () -> Ivec.set v 3 0);
  Ivec.clear v;
  Alcotest.(check int) "cleared" 0 (Ivec.length v);
  Alcotest.(check bool) "storage kept" true (Ivec.capacity v >= 3)

let test_ivec_no_alloc () =
  (* The recording path's contract: with sufficient preallocation, a
     push is a store plus a length bump — no minor-heap allocation.
     The slack admits the floats boxed by [Gc.minor_words] itself. *)
  let n = 100_000 in
  let v = Ivec.create ~capacity:n () in
  Ivec.push v 0;
  Ivec.clear v;
  let w0 = Gc.minor_words () in
  for i = 0 to n - 1 do
    Ivec.push v i
  done;
  let dw = Gc.minor_words () -. w0 in
  Alcotest.(check bool)
    (Printf.sprintf "pushes allocated %.0f minor words" dw)
    true (dw < 256.);
  Alcotest.(check int) "all recorded" n (Ivec.length v)

let test_runner_latency_recording () =
  (* The latency sampler (YCSB only) rides the same Ivec sink; make sure
     turning it on still yields samples the percentile fix can digest. *)
  let config =
    {
      (Runner.calibrated_config Nvm.Config.desktop) with
      Runner.variant = Runner.Mutex_map Atlas.Mode.Log_only;
      threads = 2;
      iterations = 50;
      workload = Runner.Ycsb { preset = Workload.Ycsb.A; records = 128 };
      n_buckets = 128;
      log_mib = 1;
      record_latency = true;
    }
  in
  let r = Runner.run config in
  let n = Array.length r.Runner.latencies_cycles in
  Alcotest.(check bool) "samples recorded" true (n > 0);
  match Report.percentiles r.Runner.latencies_cycles [ 0.5; 0.99 ] with
  | [ (_, p50); (_, p99) ] ->
      Alcotest.(check bool) "p50 <= p99" true (p50 <= p99)
  | _ -> Alcotest.fail "expected two quantiles"

(* --- History: recording through the scheduler --- *)

let test_history_wrap () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let heap = Heap.create pmem ~base:0 ~size in
  let sl = Skiplist.create heap ~num_threads:1 ~seed:3 () in
  let sched = Scheduler.create ~seed:5 () in
  let h = History.create ~sched () in
  ignore
    (Scheduler.spawn sched (fun () ->
         let ops = History.wrap h (Skiplist.ops sl) in
         ops.Map_intf.set ~tid:0 ~key:1 ~value:5L;
         (match ops.Map_intf.get ~tid:0 ~key:1 with
         | Some 5L -> ()
         | _ -> Alcotest.fail "get after set");
         ops.Map_intf.incr ~tid:0 ~key:1 ~by:2L;
         ignore (ops.Map_intf.remove ~tid:0 ~key:1 : bool))
      : int);
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  (match
     Fun.protect
       ~finally:(fun () -> Pmem.clear_step_hook pmem)
       (fun () -> Scheduler.run sched)
   with
  | Scheduler.Completed -> ()
  | _ -> Alcotest.fail "run did not complete");
  Alcotest.(check int) "ops recorded" 4 (History.length h);
  Alcotest.(check int) "all completed" 4 (History.completed h);
  Alcotest.(check int) "none pending" 0 (History.pending h);
  let r0 = History.nth h 0 in
  Alcotest.(check bool) "set op" true (r0.History.op = History.Set);
  Alcotest.(check int64) "set arg" 5L r0.History.arg;
  Alcotest.(check bool) "response after invocation" true
    (r0.History.t1 > r0.History.t0);
  let r1 = History.nth h 1 in
  Alcotest.(check bool) "get hit" true r1.History.ok;
  Alcotest.(check int64) "get result" 5L r1.History.result;
  let r3 = History.nth h 3 in
  Alcotest.(check bool) "remove found the key" true r3.History.ok;
  Alcotest.(check bool) "invocation order" true
    (r1.History.t0 >= r0.History.t1)

(* --- Dl: the verdict core, on hand-built records --- *)

let rc ?(tid = 0) ?(ok = false) ?(result = 0L) op key arg t0 t1 =
  { History.op; key; arg; tid; t0; t1; ok; result }

let dl ?(initial = []) records recovered =
  Dl.check_records ~initial ~records ~recovered

let ok name v = Alcotest.(check bool) name true (Dl.is_explained v)
let bad name v = Alcotest.(check bool) name false (Dl.is_explained v)

let test_dl_completed_set () =
  let h = [ rc History.Set 1 5L 0 1 ] in
  ok "completed set survives" (dl h [ (1, 5L) ]);
  bad "completed set lost" (dl h []);
  bad "wrong value" (dl h [ (1, 4L) ])

let test_dl_pending_set () =
  let h = [ rc History.Set 1 5L 0 (-1) ] in
  ok "pending set dropped" (dl h []);
  ok "pending set applied" (dl h [ (1, 5L) ]);
  bad "neither" (dl h [ (1, 7L) ])

let test_dl_incrs () =
  let completed =
    [ rc History.Incr 1 1L 0 1; rc History.Incr 1 1L 2 3;
      rc History.Incr 1 1L 4 5 ]
  in
  let pending =
    [ rc History.Incr 1 1L 6 (-1); rc History.Incr 1 1L 7 (-1) ]
  in
  let h = completed @ pending in
  let initial = [ (1, 0L) ] in
  ok "all pending dropped" (dl ~initial h [ (1, 3L) ]);
  ok "one pending applied" (dl ~initial h [ (1, 4L) ]);
  ok "both pending applied" (dl ~initial h [ (1, 5L) ]);
  bad "a completed incr lost" (dl ~initial h [ (1, 2L) ]);
  bad "an incr invented" (dl ~initial h [ (1, 6L) ])

let test_dl_remove () =
  let set = rc History.Set 2 9L 0 1 in
  let completed_remove = rc ~ok:true History.Remove 2 0L 2 3 in
  let pending_remove = rc History.Remove 2 0L 2 (-1) in
  ok "completed remove erases" (dl [ set; completed_remove ] []);
  bad "completed remove ignored" (dl [ set; completed_remove ] [ (2, 9L) ]);
  ok "pending remove applied" (dl [ set; pending_remove ] []);
  ok "pending remove dropped" (dl [ set; pending_remove ] [ (2, 9L) ])

let test_dl_incr_on_absent () =
  let h = [ rc History.Incr 3 7L 0 (-1) ] in
  ok "pending incr-on-absent dropped" (dl h []);
  ok "pending incr-on-absent inserts its increment" (dl h [ (3, 7L) ]);
  bad "partial effect" (dl h [ (3, 1L) ])

let test_dl_sequence () =
  let h =
    List.init 5 (fun i ->
        rc History.Set 4 (Int64.of_int (i + 1)) (2 * i) ((2 * i) + 1))
  in
  ok "last completed set wins" (dl h [ (4, 5L) ]);
  bad "an earlier set is stale" (dl h [ (4, 4L) ])

let test_dl_overlap () =
  (* Two completed sets with overlapping response intervals: neither
     really-time-precedes the other, so either linearization order —
     hence either final value — is admissible. *)
  let h = [ rc ~tid:0 History.Set 5 1L 0 10; rc ~tid:1 History.Set 5 2L 5 15 ] in
  ok "first order" (dl h [ (5, 1L) ]);
  ok "second order" (dl h [ (5, 2L) ]);
  bad "neither value" (dl h [ (5, 3L) ])

let test_dl_frame () =
  ok "untouched initial key survives"
    (dl ~initial:[ (7, 42L) ] [] [ (7, 42L) ]);
  bad "untouched initial key lost" (dl ~initial:[ (7, 42L) ] [] []);
  bad "key from nowhere" (dl [] [ (9, 1L) ]);
  ok "gets do not constrain"
    (dl ~initial:[ (1, 4L) ]
       [ rc ~ok:true ~result:5L History.Get 1 0L 0 1 ]
       [ (1, 4L) ]);
  check_raises_invalid "duplicate initial key" (fun () ->
      ignore (dl ~initial:[ (1, 0L); (1, 1L) ] [] []))

(* Cross-validation against the sequential oracle: a fully sequential,
   all-completed history has exactly one admissible final state — the
   model's — and any perturbation of it must be flagged. *)
let test_dl_vs_model =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (triple (int_range 0 2) (int_range 0 4) (int_range 1 5)))
  in
  qcheck ~count:300 "dl agrees with the sequential model" gen (fun ops ->
      let apply m (opc, key, v) =
        match opc with
        | 0 -> Model.set m ~key ~value:(Int64.of_int v)
        | 1 -> Model.incr m ~key ~by:(Int64.of_int v)
        | _ -> fst (Model.remove m ~key)
      in
      let final = List.fold_left apply Model.empty ops in
      let records =
        List.mapi
          (fun i (opc, _, v) ->
            let op, arg =
              match opc with
              | 0 -> (History.Set, Int64.of_int v)
              | 1 -> (History.Incr, Int64.of_int v)
              | _ -> (History.Remove, 0L)
            in
            let (_, key, _) = List.nth ops i in
            rc op key arg (2 * i) ((2 * i) + 1))
          ops
      in
      let entries = Model.entries final in
      Dl.is_explained (dl records entries)
      && not (Dl.is_explained (dl records ((999, 123L) :: entries))))

(* --- Snapshot: kind-dispatched state enumeration --- *)

let test_snapshot_skiplist () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let heap = Heap.create pmem ~base:0 ~size in
  let sl = Skiplist.create heap ~num_threads:1 ~seed:3 () in
  List.iter
    (fun (k, v) -> Skiplist.set_plain sl ~key:k ~value:v)
    [ (5, 50L); (1, 10L); (2, 20L) ];
  Alcotest.(check string) "structure" "skip_node" (Snapshot.structure heap);
  Alcotest.(check (list (pair int int64)))
    "entries in key order"
    [ (1, 10L); (2, 20L); (5, 50L) ]
    (Snapshot.entries heap)

let test_snapshot_hashmap () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let log_base = size - (512 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  let atlas =
    Atlas.Runtime.create ~mode:Atlas.Mode.Log_only ~heap ~log_base
      ~log_size:(512 * 1024) ~num_threads:1 ()
  in
  let sched = Scheduler.create ~seed:5 () in
  let hm = Hashmap.create heap ~atlas ~sched ~n_buckets:16 () in
  List.iter
    (fun (k, v) -> Hashmap.set_plain hm ~key:k ~value:v)
    [ (5, 50L); (1, 10L); (2, 20L) ];
  Alcotest.(check string) "structure" "hash_header" (Snapshot.structure heap);
  Alcotest.(check bool) "entries match (any order)" true
    (Model.equal_entries
       [ (1, 10L); (2, 20L); (5, 50L) ]
       (Snapshot.entries heap))

(* --- Recovery verdict formatting --- *)

let test_orphan_warning () =
  Alcotest.(check (option string))
    "no orphans, no warning" None
    (Recovery.orphan_warning ~tid:3 ~orphans:0);
  Alcotest.(check (option string))
    "singular"
    (Some "thread 3 log truncated (1 orphaned entry)")
    (Recovery.orphan_warning ~tid:3 ~orphans:1);
  Alcotest.(check (option string))
    "plural"
    (Some "thread 0 log truncated (7 orphaned entries)")
    (Recovery.orphan_warning ~tid:0 ~orphans:7)

let test_pp_verdict () =
  Alcotest.(check string) "clean" "clean"
    (Fmt.str "%a" Recovery.pp_verdict Recovery.Clean);
  Alcotest.(check string) "degraded"
    "degraded (thread 3 log truncated (1 orphaned entry); skipped 2 updates)"
    (Fmt.str "%a"
       (Fmt.hbox Recovery.pp_verdict)
       (Recovery.Degraded
          [ Option.get (Recovery.orphan_warning ~tid:3 ~orphans:1);
            "skipped 2 updates" ]));
  Alcotest.(check string) "unrecoverable"
    "UNRECOVERABLE: log region header failed validation"
    (Fmt.str "%a" Recovery.pp_verdict
       (Recovery.Unrecoverable "log region header failed validation"))

(* --- Fault_injector.tally: the verdict ledger --- *)

let outcome ?(fault = None) ?(violation = false) ?(expected = false)
    ?recovery_verdict () =
  {
    FI.seed = 1;
    crash_step = 100;
    fault;
    crashed = true;
    consistent = not violation;
    graceful = true;
    recovery_verdict;
    violation;
    expected;
    repro = "tsp faults --runs 1";
    iterations_done = 10;
    invariants = { Workload.Invariant.ok = true; checks = [] };
    observer_prefix_ok = None;
    rolled_back = 0;
    cascaded = 0;
    gc_freed = 0;
    errors = [];
    cycle_totals = Array.make (Array.length Nvm.Stats.cycle_category_names) 0;
  }

let test_tally () =
  let outcomes =
    [
      outcome ~recovery_verdict:Recovery.Clean ();
      outcome ~recovery_verdict:(Recovery.Degraded [ "torn tail" ]) ();
      outcome
        ~recovery_verdict:(Recovery.Unrecoverable "header torn")
        ~violation:true ();
      (* Different model: must not be counted under [None]. *)
      outcome ~fault:(Some Nvm.Fault_model.Full_rescue)
        ~recovery_verdict:Recovery.Clean ();
    ]
  in
  let t = FI.tally ~model:None outcomes in
  Alcotest.(check int) "runs" 3 t.FI.m_runs;
  Alcotest.(check int) "crashes" 3 t.FI.m_crashes;
  Alcotest.(check int) "consistent" 2 t.FI.m_consistent;
  Alcotest.(check int) "clean" 1 t.FI.m_clean;
  Alcotest.(check int) "degraded" 1 t.FI.m_degraded;
  Alcotest.(check int) "unrecoverable" 1 t.FI.m_unrecoverable;
  Alcotest.(check int) "violations" 1 t.FI.m_violations;
  Alcotest.(check int) "unexpected" 1 t.FI.m_unexpected

let test_tally_ledger_renders () =
  let outcomes =
    [
      outcome ~recovery_verdict:Recovery.Clean ();
      outcome
        ~recovery_verdict:(Recovery.Unrecoverable "header torn")
        ~violation:true ();
    ]
  in
  let spec = FI.default_spec (Runner.calibrated_config Nvm.Config.desktop) in
  let summary =
    {
      FI.spec;
      outcomes;
      total = 2;
      crashes = 2;
      consistent_recoveries = 1;
      violations = 1;
      unexpected_violations = 1;
      per_model = [ FI.tally ~model:None outcomes ];
      shrunk = None;
    }
  in
  let s = Fmt.str "%a" FI.pp_summary summary in
  Alcotest.(check bool)
    "ledger row shows the unrecoverable bucket" true
    (contains s "clean/degraded/unrecoverable 1/0/1");
  Alcotest.(check bool) "violation line carries the repro" true
    (contains s "tsp faults --runs 1")

(* --- Check_campaign: end-to-end over the real simulator --- *)

let smoke_base variant =
  {
    (Runner.calibrated_config
       { Nvm.Config.desktop with Nvm.Config.cache_lines = 512 })
    with
    Runner.variant;
    workload = Runner.Counters { h_keys = 64; preload = true };
    threads = 2;
    iterations = 120;
    n_buckets = 128;
    log_mib = 1;
  }

let campaign_spec ?mutate ?(mutate_label = "") variant ~from_step ~window
    ~stride =
  {
    (CC.default_spec (smoke_base variant)) with
    CC.from_step;
    window;
    stride;
    mutate;
    mutate_label;
  }

let test_campaign_clean_skiplist () =
  let s =
    CC.run ~jobs:1
      (campaign_spec Runner.Nonblocking_map ~from_step:600 ~window:600
         ~stride:200)
  in
  Alcotest.(check int) "points" 3 s.CC.total;
  Alcotest.(check bool)
    (Fmt.str "clean, got %a" CC.pp_summary s)
    true (CC.clean s)

let test_campaign_clean_hashmap () =
  let s =
    CC.run ~jobs:1
      (campaign_spec (Runner.Mutex_map Atlas.Mode.Log_only) ~from_step:600
         ~window:600 ~stride:300)
  in
  Alcotest.(check bool)
    (Fmt.str "clean, got %a" CC.pp_summary s)
    true (CC.clean s)

let test_campaign_mutant_flagged () =
  (* The planted non-durable variant: writes acknowledged to the caller
     (and hence completed in the history) are silently never issued.
     The checker must notice on at least one enumerated crash point. *)
  let s =
    CC.run ~jobs:1
      (campaign_spec
         ~mutate:(CC.non_durable ~seed:11 ~every:3)
         ~mutate_label:"non-durable, drops ~1/3 writes"
         Runner.Nonblocking_map ~from_step:600 ~window:600 ~stride:300)
  in
  Alcotest.(check bool) "mutant flagged" true (s.CC.flagged >= 1)

let test_campaign_jobs_deterministic () =
  let spec =
    campaign_spec Runner.Nonblocking_map ~from_step:600 ~window:400
      ~stride:200
  in
  let render s = Fmt.str "%a" CC.pp_summary s in
  Alcotest.(check string) "summaries byte-identical for jobs 1 vs 4"
    (render (CC.run ~jobs:1 spec))
    (render (CC.run ~jobs:4 spec))

let test_campaign_rejects_unsound () =
  check_raises_invalid "adversarial fault model rejected" (fun () ->
      let base =
        {
          (smoke_base Runner.Nonblocking_map) with
          Runner.fault_model = Some (Nvm.Fault_model.Torn_lines { prob = 0.5 });
        }
      in
      ignore (CC.run ~jobs:1 (CC.default_spec base)));
  check_raises_invalid "non-TSP verdict rejected" (fun () ->
      let base =
        {
          (smoke_base (Runner.Mutex_map Atlas.Mode.Log_only)) with
          Runner.hardware = Tsp_core.Hardware.conventional_server;
          failure = Tsp_core.Failure_class.Power_outage;
        }
      in
      ignore (CC.run ~jobs:1 (CC.default_spec base)))

let suite =
  ( "checker",
    [
      case "percentiles/small" test_percentiles_small;
      case "percentiles/fixture" test_percentiles_fixture;
      case "ivec/basic" test_ivec_basic;
      case "ivec/no-alloc" test_ivec_no_alloc;
      case "runner/latency-recording" test_runner_latency_recording;
      case "history/wrap" test_history_wrap;
      case "dl/completed-set" test_dl_completed_set;
      case "dl/pending-set" test_dl_pending_set;
      case "dl/incrs" test_dl_incrs;
      case "dl/remove" test_dl_remove;
      case "dl/incr-on-absent" test_dl_incr_on_absent;
      case "dl/sequence" test_dl_sequence;
      case "dl/overlap" test_dl_overlap;
      case "dl/frame" test_dl_frame;
      test_dl_vs_model;
      case "snapshot/skiplist" test_snapshot_skiplist;
      case "snapshot/hashmap" test_snapshot_hashmap;
      case "recovery/orphan-warning" test_orphan_warning;
      case "recovery/pp-verdict" test_pp_verdict;
      case "faults/tally" test_tally;
      case "faults/tally-ledger" test_tally_ledger_renders;
      slow_case "campaign/clean-skiplist" test_campaign_clean_skiplist;
      slow_case "campaign/clean-hashmap" test_campaign_clean_hashmap;
      slow_case "campaign/mutant-flagged" test_campaign_mutant_flagged;
      slow_case "campaign/jobs-deterministic" test_campaign_jobs_deterministic;
      case "campaign/rejects-unsound" test_campaign_rejects_unsound;
    ] )
