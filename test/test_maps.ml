(* Tests for the two map implementations: functional correctness
   (including model-based random testing), concurrency behaviour under
   the deterministic scheduler, and crash-recovery of each. *)

open Helpers
module Hashmap = Tsp_maps.Chained_hashmap
module Skiplist = Tsp_maps.Lockfree_skiplist
module Map_intf = Tsp_maps.Map_intf
module Rt = Atlas.Runtime
module Mode = Atlas.Mode
module Heap_gc = Pheap.Heap_gc

(* Environments.  Maps need a scheduler-driven context even for
   single-threaded tests, because hash map operations lock mutexes. *)

let hash_env ?(mode = Mode.Log_only) ?(threads = 2) ?(n_buckets = 64) () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let log_base = size - (512 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  let atlas =
    Rt.create ~mode ~heap ~log_base ~log_size:(512 * 1024)
      ~num_threads:threads ()
  in
  let sched = Scheduler.create ~seed:5 () in
  let hm = Hashmap.create heap ~atlas ~sched ~n_buckets () in
  (pmem, heap, atlas, sched, hm)

(* Run map operations inside a single simulated thread. *)
let in_thread pmem sched body =
  ignore (Scheduler.spawn sched body : int);
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  Fun.protect
    ~finally:(fun () -> Pmem.clear_step_hook pmem)
    (fun () ->
      match Scheduler.run sched with
      | Scheduler.Completed -> ()
      | Scheduler.Crashed _ -> Alcotest.fail "unexpected crash"
      | Scheduler.Deadlocked _ -> Alcotest.fail "unexpected deadlock")

let skip_env ?(threads = 4) () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let heap = Heap.create pmem ~base:0 ~size in
  let sl = Skiplist.create heap ~num_threads:threads ~seed:3 () in
  (pmem, heap, sl)

(* --- Hash map: functional behaviour --- *)

let test_hash_set_get () =
  let pmem, _, _, sched, hm = hash_env () in
  let ops = Hashmap.ops hm in
  in_thread pmem sched (fun () ->
      ops.Map_intf.set ~tid:0 ~key:1 ~value:10L;
      ops.Map_intf.set ~tid:0 ~key:2 ~value:20L;
      Alcotest.(check (option int64)) "get 1" (Some 10L)
        (ops.Map_intf.get ~tid:0 ~key:1);
      Alcotest.(check (option int64)) "get 2" (Some 20L)
        (ops.Map_intf.get ~tid:0 ~key:2);
      Alcotest.(check (option int64)) "absent" None
        (ops.Map_intf.get ~tid:0 ~key:3);
      ops.Map_intf.set ~tid:0 ~key:1 ~value:11L;
      Alcotest.(check (option int64)) "overwrite" (Some 11L)
        (ops.Map_intf.get ~tid:0 ~key:1))

let test_hash_incr () =
  let pmem, _, _, sched, hm = hash_env () in
  let ops = Hashmap.ops hm in
  in_thread pmem sched (fun () ->
      ops.Map_intf.incr ~tid:0 ~key:5 ~by:3L (* insert-if-absent *);
      ops.Map_intf.incr ~tid:0 ~key:5 ~by:4L;
      Alcotest.(check (option int64)) "accumulated" (Some 7L)
        (ops.Map_intf.get ~tid:0 ~key:5))

let test_hash_remove () =
  (* Two buckets force long chains: removal must unlink head, middle and
     tail positions correctly. *)
  let pmem, heap, _, sched, hm = hash_env ~n_buckets:2 () in
  let ops = Hashmap.ops hm in
  in_thread pmem sched (fun () ->
      List.iter
        (fun k -> ops.Map_intf.set ~tid:0 ~key:k ~value:(Int64.of_int k))
        [ 1; 2; 3; 4; 5; 6 ];
      Alcotest.(check bool) "remove present" true
        (ops.Map_intf.remove ~tid:0 ~key:3);
      Alcotest.(check bool) "remove again" false
        (ops.Map_intf.remove ~tid:0 ~key:3);
      Alcotest.(check (option int64)) "gone" None (ops.Map_intf.get ~tid:0 ~key:3);
      List.iter
        (fun k ->
          Alcotest.(check (option int64))
            (Printf.sprintf "key %d survives" k)
            (Some (Int64.of_int k))
            (ops.Map_intf.get ~tid:0 ~key:k))
        [ 1; 2; 4; 5; 6 ]);
  Alcotest.(check int) "size" 5 (Hashmap.size_plain heap ~root:(Hashmap.root hm))

let test_hash_fold_and_size () =
  let pmem, heap, _, sched, hm = hash_env () in
  let ops = Hashmap.ops hm in
  in_thread pmem sched (fun () ->
      for k = 1 to 20 do
        ops.Map_intf.set ~tid:0 ~key:k ~value:(Int64.of_int (k * k))
      done);
  let root = Hashmap.root hm in
  Alcotest.(check int) "size" 20 (Hashmap.size_plain heap ~root);
  let sum =
    Hashmap.fold_plain heap ~root (fun _ v acc -> Int64.add acc v) 0L
  in
  Alcotest.check int64 "sum of squares" 2870L sum

let test_hash_attach () =
  let pmem, heap, atlas, sched, hm = hash_env () in
  let ops = Hashmap.ops hm in
  in_thread pmem sched (fun () -> ops.Map_intf.set ~tid:0 ~key:9 ~value:99L);
  let sched2 = Scheduler.create () in
  let hm2 = Hashmap.attach heap ~atlas ~sched:sched2 (Hashmap.root hm) in
  Alcotest.(check int) "buckets preserved" (Hashmap.n_buckets hm)
    (Hashmap.n_buckets hm2);
  Alcotest.(check int) "same size" 1
    (Hashmap.size_plain heap ~root:(Hashmap.root hm2));
  check_raises_invalid "attach to a non-header" (fun () ->
      ignore (Hashmap.attach heap ~atlas ~sched:sched2 64))

let test_hash_set_plain_matches_ops () =
  let pmem, heap, _, sched, hm = hash_env () in
  Hashmap.set_plain hm ~key:1 ~value:5L;
  Hashmap.set_plain hm ~key:1 ~value:6L;
  Hashmap.set_plain hm ~key:2 ~value:7L;
  let ops = Hashmap.ops hm in
  in_thread pmem sched (fun () ->
      Alcotest.(check (option int64)) "plain insert visible" (Some 6L)
        (ops.Map_intf.get ~tid:0 ~key:1));
  Alcotest.(check int) "size 2" 2 (Hashmap.size_plain heap ~root:(Hashmap.root hm))

let test_hash_transfer () =
  let pmem, heap, _, sched, hm = hash_env ~n_buckets:2048 ~threads:2 () in
  Hashmap.set_plain hm ~key:100 ~value:50L;
  Hashmap.set_plain hm ~key:200 ~value:10L;
  in_thread pmem sched (fun () ->
      Alcotest.(check bool) "transfer ok" true
        (Hashmap.transfer hm ~tid:0 ~debit:100 ~credit:200 ~amount:30L);
      Alcotest.(check bool) "insufficient funds" false
        (Hashmap.transfer hm ~tid:0 ~debit:100 ~credit:200 ~amount:30L);
      Alcotest.(check bool) "missing account" false
        (Hashmap.transfer hm ~tid:0 ~debit:100 ~credit:999 ~amount:1L));
  let root = Hashmap.root hm in
  let v k = Hashmap.fold_plain heap ~root (fun k' v acc -> if k' = k then v else acc) 0L in
  Alcotest.check int64 "debited" 20L (v 100);
  Alcotest.check int64 "credited" 40L (v 200)

let test_hash_concurrent_counters () =
  (* Eight threads hammer one key with increments; the mutex must make
     the read-modify-write atomic. *)
  let pmem, heap, _, sched, hm = hash_env ~threads:8 () in
  let ops = Hashmap.ops hm in
  Hashmap.set_plain hm ~key:1 ~value:0L;
  for tid = 0 to 7 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for _ = 1 to 50 do
             ops.Map_intf.incr ~tid ~key:1 ~by:1L
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  ignore (Scheduler.run sched);
  Pmem.clear_step_hook pmem;
  let root = Hashmap.root hm in
  let v =
    Hashmap.fold_plain heap ~root (fun k v acc -> if k = 1 then v else acc) 0L
  in
  Alcotest.check int64 "no lost increments" 400L v

let test_hash_wide_values () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let log_base = size - (512 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  let atlas =
    Rt.create ~mode:Mode.Log_only ~heap ~log_base ~log_size:(512 * 1024)
      ~num_threads:2 ()
  in
  let sched = Scheduler.create () in
  let hm = Hashmap.create heap ~atlas ~sched ~n_buckets:64 ~value_words:4 () in
  Alcotest.(check int) "width recorded" 4 (Hashmap.value_words hm);
  in_thread pmem sched (fun () ->
      Hashmap.set_wide hm ~tid:0 ~key:7 ~values:[| 1L; 2L; 3L; 4L |];
      Alcotest.(check (option (array int64))) "wide roundtrip"
        (Some [| 1L; 2L; 3L; 4L |])
        (Hashmap.get_wide hm ~tid:0 ~key:7);
      Alcotest.(check (option (array int64))) "absent" None
        (Hashmap.get_wide hm ~tid:0 ~key:8);
      Hashmap.set_wide hm ~tid:0 ~key:7 ~values:[| 9L; 9L; 9L; 9L |];
      Alcotest.(check (option (array int64))) "overwrite all words"
        (Some [| 9L; 9L; 9L; 9L |])
        (Hashmap.get_wide hm ~tid:0 ~key:7);
      Alcotest.check_raises "width checked"
        (Invalid_argument "Chained_hashmap.set_wide: wrong width") (fun () ->
          Hashmap.set_wide hm ~tid:0 ~key:1 ~values:[| 1L |]));
  (* attach rediscovers the width from the persistent header *)
  let sched2 = Scheduler.create () in
  let hm2 = Hashmap.attach heap ~atlas ~sched:sched2 (Hashmap.root hm) in
  Alcotest.(check int) "attach recovers width" 4 (Hashmap.value_words hm2);
  let dump =
    Hashmap.fold_wide_plain heap ~root:(Hashmap.root hm)
      (fun k vs acc -> (k, vs) :: acc)
      []
  in
  Alcotest.(check int) "one wide entry" 1 (List.length dump)

(* Model-based random testing against Stdlib.Hashtbl. *)
let prop_hash_vs_model =
  qcheck ~count:60 "hash map behaves like Hashtbl"
    QCheck2.Gen.(
      list_size (int_range 1 120)
        (pair (int_range 0 3) (pair (int_range 0 40) (int_range (-50) 50))))
    (fun script ->
      let pmem, heap, _, sched, hm = hash_env ~n_buckets:8 () in
      let ops = Hashmap.ops hm in
      let model : (int, int64) Hashtbl.t = Hashtbl.create 16 in
      let ok = ref true in
      in_thread pmem sched (fun () ->
          List.iter
            (fun (op, (key, v)) ->
              let v64 = Int64.of_int v in
              match op with
              | 0 ->
                  ops.Map_intf.set ~tid:0 ~key ~value:v64;
                  Hashtbl.replace model key v64
              | 1 ->
                  ops.Map_intf.incr ~tid:0 ~key ~by:v64;
                  let old = Option.value (Hashtbl.find_opt model key) ~default:0L in
                  Hashtbl.replace model key (Int64.add old v64)
              | 2 ->
                  let got = ops.Map_intf.remove ~tid:0 ~key in
                  let expected = Hashtbl.mem model key in
                  Hashtbl.remove model key;
                  if got <> expected then ok := false
              | _ ->
                  let got = ops.Map_intf.get ~tid:0 ~key in
                  let expected = Hashtbl.find_opt model key in
                  if got <> expected then ok := false)
            script);
      let dump =
        Hashmap.fold_plain heap ~root:(Hashmap.root hm)
          (fun k v acc -> (k, v) :: acc)
          []
        |> List.sort compare
      in
      let model_dump =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare
      in
      !ok && dump = model_dump)

(* --- Skip list: functional behaviour --- *)

let test_skip_set_get () =
  let pmem, _, sl = skip_env () in
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create () in
  in_thread pmem sched (fun () ->
      ops.Map_intf.set ~tid:0 ~key:10 ~value:1L;
      ops.Map_intf.set ~tid:0 ~key:5 ~value:2L;
      ops.Map_intf.set ~tid:0 ~key:20 ~value:3L;
      Alcotest.(check (option int64)) "get 5" (Some 2L)
        (ops.Map_intf.get ~tid:0 ~key:5);
      Alcotest.(check (option int64)) "get 10" (Some 1L)
        (ops.Map_intf.get ~tid:0 ~key:10);
      Alcotest.(check (option int64)) "absent" None
        (ops.Map_intf.get ~tid:0 ~key:15);
      ops.Map_intf.set ~tid:0 ~key:10 ~value:9L;
      Alcotest.(check (option int64)) "overwrite" (Some 9L)
        (ops.Map_intf.get ~tid:0 ~key:10))

let test_skip_sorted_fold () =
  let pmem, heap, sl = skip_env () in
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create () in
  in_thread pmem sched (fun () ->
      List.iter
        (fun k -> ops.Map_intf.set ~tid:0 ~key:k ~value:(Int64.of_int k))
        [ 42; 7; 19; 3; 99; 56 ]);
  let root = Skiplist.root sl in
  let keys =
    List.rev (Skiplist.fold_plain heap ~root (fun k _ acc -> k :: acc) [])
  in
  Alcotest.(check (list int)) "sorted traversal" [ 3; 7; 19; 42; 56; 99 ] keys;
  Alcotest.(check bool) "structure check" true
    (Skiplist.check_plain heap ~root = Ok ())

let test_skip_remove () =
  let pmem, heap, sl = skip_env () in
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create () in
  in_thread pmem sched (fun () ->
      List.iter
        (fun k -> ops.Map_intf.set ~tid:0 ~key:k ~value:0L)
        [ 1; 2; 3; 4 ];
      Alcotest.(check bool) "remove present" true
        (ops.Map_intf.remove ~tid:0 ~key:2);
      Alcotest.(check bool) "remove absent" false
        (ops.Map_intf.remove ~tid:0 ~key:2);
      Alcotest.(check (option int64)) "gone" None (ops.Map_intf.get ~tid:0 ~key:2);
      Alcotest.(check (option int64)) "neighbours intact" (Some 0L)
        (ops.Map_intf.get ~tid:0 ~key:3));
  Alcotest.(check int) "size" 3 (Skiplist.size_plain heap ~root:(Skiplist.root sl))

let test_skip_incr () =
  let pmem, _, sl = skip_env () in
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create () in
  in_thread pmem sched (fun () ->
      ops.Map_intf.incr ~tid:0 ~key:7 ~by:5L;
      ops.Map_intf.incr ~tid:0 ~key:7 ~by:6L;
      Alcotest.(check (option int64)) "sum" (Some 11L)
        (ops.Map_intf.get ~tid:0 ~key:7))

let test_skip_attach () =
  let _, heap, sl = skip_env () in
  Skiplist.set_plain sl ~key:1 ~value:1L;
  let sl2 = Skiplist.attach heap ~num_threads:2 ~seed:9 (Skiplist.root sl) in
  Alcotest.(check int) "levels preserved" (Skiplist.max_level sl)
    (Skiplist.max_level sl2);
  check_raises_invalid "attach to a non-node" (fun () ->
      ignore (Skiplist.attach heap ~num_threads:2 ~seed:9 64))

let test_skip_concurrent_inserts () =
  let pmem, heap, sl = skip_env ~threads:8 () in
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create ~seed:17 () in
  for tid = 0 to 7 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 0 to 39 do
             ops.Map_intf.set ~tid ~key:((100 * tid) + i) ~value:(Int64.of_int tid)
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  ignore (Scheduler.run sched);
  Pmem.clear_step_hook pmem;
  let root = Skiplist.root sl in
  Alcotest.(check int) "all inserted" 320 (Skiplist.size_plain heap ~root);
  Alcotest.(check bool) "still sorted" true (Skiplist.check_plain heap ~root = Ok ())

let test_skip_concurrent_same_key () =
  (* All threads race to insert the same key, then increment it: exactly
     one node must win and no increment may be lost. *)
  let pmem, heap, sl = skip_env ~threads:8 () in
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create ~seed:23 () in
  for tid = 0 to 7 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for _ = 1 to 25 do
             ops.Map_intf.incr ~tid ~key:777 ~by:1L
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  ignore (Scheduler.run sched);
  Pmem.clear_step_hook pmem;
  let root = Skiplist.root sl in
  Alcotest.(check int) "one node" 1 (Skiplist.size_plain heap ~root);
  let v = Skiplist.fold_plain heap ~root (fun _ v _ -> v) 0L in
  Alcotest.check int64 "no lost updates" 200L v

let test_skip_level_distribution () =
  (* Geometric levels with p = 1/2: the mean should be near 2 and the
     maximum bounded by max_level. *)
  let _, heap, _ = skip_env () in
  ignore heap;
  let pmem2 = desktop_pmem ~region_mib:4 () in
  let heap2 = Heap.create pmem2 ~base:0 ~size:(1024 * 1024) in
  let sl = Skiplist.create heap2 ~num_threads:1 ~seed:1 () in
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create () in
  in_thread pmem2 sched (fun () ->
      for k = 1 to 500 do
        ops.Map_intf.set ~tid:0 ~key:k ~value:0L
      done);
  (* Level of each node = words - 3; read via the object headers. *)
  let total = ref 0 and n = ref 0 and max_lv = ref 0 in
  Heap.iter_blocks heap2 (fun ~addr:_ ~kind ~words ->
      if kind = Skiplist.node_kind && words - 3 < Skiplist.max_level sl then begin
        let lv = words - 3 in
        total := !total + lv;
        incr n;
        if lv > !max_lv then max_lv := lv
      end);
  let mean = float_of_int !total /. float_of_int !n in
  Alcotest.(check bool)
    (Printf.sprintf "mean level %.2f in [1.6, 2.4]" mean)
    true
    (mean > 1.6 && mean < 2.4);
  Alcotest.(check bool) "bounded" true (!max_lv <= Skiplist.max_level sl)

let prop_skip_vs_model =
  qcheck ~count:40 "skip list behaves like Map"
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (pair (int_range 0 3) (pair (int_range 0 30) (int_range (-50) 50))))
    (fun script ->
      let pmem, heap, sl = skip_env () in
      let ops = Skiplist.ops sl in
      let module IM = Map.Make (Int) in
      let model = ref IM.empty in
      let ok = ref true in
      let sched = Scheduler.create () in
      in_thread pmem sched (fun () ->
          List.iter
            (fun (op, (key, v)) ->
              let v64 = Int64.of_int v in
              match op with
              | 0 ->
                  ops.Map_intf.set ~tid:0 ~key ~value:v64;
                  model := IM.add key v64 !model
              | 1 ->
                  ops.Map_intf.incr ~tid:0 ~key ~by:v64;
                  let old = Option.value (IM.find_opt key !model) ~default:0L in
                  model := IM.add key (Int64.add old v64) !model
              | 2 ->
                  let got = ops.Map_intf.remove ~tid:0 ~key in
                  if got <> IM.mem key !model then ok := false;
                  model := IM.remove key !model
              | _ ->
                  if ops.Map_intf.get ~tid:0 ~key <> IM.find_opt key !model then
                    ok := false)
            script);
      let dump =
        List.rev
          (Skiplist.fold_plain heap ~root:(Skiplist.root sl)
             (fun k v acc -> (k, v) :: acc)
             [])
      in
      !ok && dump = IM.bindings !model)

(* --- The commit-free newcomers: NVTraverse and delay-free --- *)

module Nvt = Tsp_maps.Nvtraverse_skiplist
module Delayfree = Tsp_maps.Delayfree_map

let nvt_env ?(threads = 4) () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let heap = Heap.create pmem ~base:0 ~size in
  let sl = Nvt.create heap ~num_threads:threads ~seed:3 () in
  (pmem, heap, sl)

let delayfree_env () =
  let pmem = desktop_pmem ~region_mib:4 () in
  let size = (Pmem.config pmem).Config.region_size in
  let heap = Heap.create pmem ~base:0 ~size in
  let t =
    Delayfree.create heap ~capacity:(Delayfree.capacity_for ~n_buckets:64) ()
  in
  (pmem, heap, t)

(* One generated script, interpreted against Map.Make(Int) — the same
   oracle discipline as [prop_skip_vs_model], aimed at each new
   variant.  [dump] at the end must equal the model's bindings, so a
   lost update, duplicate slot or broken unlink cannot hide. *)
let run_script_vs_model pmem ops dump script =
  let module IM = Map.Make (Int) in
  let model = ref IM.empty in
  let ok = ref true in
  let sched = Scheduler.create () in
  in_thread pmem sched (fun () ->
      List.iter
        (fun (op, (key, v)) ->
          let v64 = Int64.of_int v in
          match op with
          | 0 ->
              ops.Map_intf.set ~tid:0 ~key ~value:v64;
              model := IM.add key v64 !model
          | 1 ->
              ops.Map_intf.incr ~tid:0 ~key ~by:v64;
              let old = Option.value (IM.find_opt key !model) ~default:0L in
              model := IM.add key (Int64.add old v64) !model
          | 2 ->
              let got = ops.Map_intf.remove ~tid:0 ~key in
              if got <> IM.mem key !model then ok := false;
              model := IM.remove key !model
          | _ ->
              if ops.Map_intf.get ~tid:0 ~key <> IM.find_opt key !model then
                ok := false)
        script);
  !ok && dump () = IM.bindings !model

let script_gen =
  QCheck2.Gen.(
    list_size (int_range 1 80)
      (pair (int_range 0 3) (pair (int_range 0 30) (int_range (-50) 50))))

let prop_nvt_vs_model =
  qcheck ~count:40 "nvtraverse skip list behaves like Map" script_gen
    (fun script ->
      let pmem, heap, sl = nvt_env () in
      let dump () =
        List.rev
          (Nvt.fold_plain heap ~root:(Nvt.root sl)
             (fun k v acc -> (k, v) :: acc)
             [])
      in
      run_script_vs_model pmem (Nvt.ops sl) dump script)

let prop_delayfree_vs_model =
  qcheck ~count:40 "delay-free table behaves like Map" script_gen
    (fun script ->
      let pmem, heap, t = delayfree_env () in
      let dump () =
        List.sort compare
          (Delayfree.fold_plain heap ~root:(Delayfree.root t)
             (fun k v acc -> (k, v) :: acc)
             [])
      in
      run_script_vs_model pmem (Delayfree.ops t) dump script)

(* --- Crash recovery of each structure --- *)

let test_hash_crash_recovery () =
  let pmem, heap, _, sched, hm = hash_env ~mode:Mode.Log_only ~threads:4 () in
  Hashmap.set_plain hm ~key:0 ~value:0L;
  Pmem.persist_all pmem;
  let ops = Hashmap.ops hm in
  for tid = 0 to 3 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 1 to 200 do
             ops.Map_intf.incr ~tid ~key:0 ~by:1L;
             ops.Map_intf.set ~tid ~key:((tid * 1000) + i) ~value:(Int64.of_int i)
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  let outcome = Scheduler.run ~crash_at_step:30_000 sched in
  Pmem.clear_step_hook pmem;
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Pmem.crash pmem Pmem.Rescue;
  Pmem.recover pmem;
  let size = (Pmem.config pmem).Config.region_size in
  let heap' = Heap.attach pmem ~base:0 ~size:(size - (512 * 1024)) in
  ignore heap;
  let report = Atlas.Recovery.run ~heap:heap' ~log_base:(size - (512 * 1024)) () in
  let gc = Heap_gc.collect heap' in
  Alcotest.(check bool) "audit passes" true (Heap_gc.verify heap' = Ok ());
  Alcotest.(check bool) "recovery examined sections" true
    (report.Atlas.Recovery.ocses >= 0);
  ignore (gc : Heap_gc.stats);
  (* Every present key maps to a sane value (rollback left no tears). *)
  let entries =
    Hashmap.fold_plain heap' ~root:(Heap.get_root heap')
      (fun k v acc -> (k, v) :: acc)
      []
  in
  Alcotest.(check bool) "dump non-empty" true (List.length entries >= 1);
  List.iter
    (fun (k, v) ->
      if k > 0 then
        Alcotest.(check bool) "value = key payload" true
          (Int64.to_int v = k mod 1000))
    entries

let test_skip_crash_recovery_and_gc () =
  let pmem, heap, sl = skip_env ~threads:4 () in
  Pmem.persist_all pmem;
  let ops = Skiplist.ops sl in
  let sched = Scheduler.create ~seed:31 () in
  for tid = 0 to 3 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 1 to 300 do
             ops.Map_intf.set ~tid ~key:((1000 * tid) + i) ~value:(Int64.of_int i)
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  let outcome = Scheduler.run ~crash_at_step:25_000 sched in
  Pmem.clear_step_hook pmem;
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Pmem.crash pmem Pmem.Rescue;
  Pmem.recover pmem;
  let size = (Pmem.config pmem).Config.region_size in
  let heap' = Heap.attach pmem ~base:0 ~size in
  ignore heap;
  let root = Heap.get_root heap' in
  Alcotest.(check bool) "consistent with zero recovery code" true
    (Skiplist.check_plain heap' ~root = Ok ());
  let gc = Heap_gc.collect heap' in
  Alcotest.(check bool) "audit passes" true (Heap_gc.verify heap' = Ok ());
  (* Values of present keys are exactly what their writer stored. *)
  Skiplist.fold_plain heap' ~root
    (fun k v () ->
      Alcotest.(check bool) "no torn node" true (Int64.to_int v = k mod 1000))
    ();
  ignore (gc : Heap_gc.stats)

let test_nvt_crash_recovery () =
  (* Same shape as the plain skip-list crash test: distinct keys whose
     values are congruent to them, so any torn or lost node is visible.
     Recovery is re-attachment + GC, with zero structure-specific code —
     the NVTraverse argument is that the flushed O(1) words suffice. *)
  let pmem, heap, sl = nvt_env () in
  Pmem.persist_all pmem;
  let ops = Nvt.ops sl in
  let sched = Scheduler.create ~seed:31 () in
  for tid = 0 to 3 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 1 to 300 do
             ops.Map_intf.set ~tid ~key:((1000 * tid) + i) ~value:(Int64.of_int i)
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  let outcome = Scheduler.run ~crash_at_step:25_000 sched in
  Pmem.clear_step_hook pmem;
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Pmem.crash pmem Pmem.Rescue;
  Pmem.recover pmem;
  let size = (Pmem.config pmem).Config.region_size in
  let heap' = Heap.attach pmem ~base:0 ~size in
  ignore heap;
  let root = Heap.get_root heap' in
  Alcotest.(check bool) "consistent with zero recovery code" true
    (Nvt.check_plain heap' ~root = Ok ());
  ignore (Heap_gc.collect heap' : Heap_gc.stats);
  Alcotest.(check bool) "audit passes" true (Heap_gc.verify heap' = Ok ());
  Nvt.fold_plain heap' ~root
    (fun k v () ->
      Alcotest.(check bool) "no torn node" true (Int64.to_int v = k mod 1000))
    ()

let test_delayfree_crash_repair () =
  (* Crash mid-run with contended recoverable CASes in flight, then run
     the repair scan.  Each key's value must be congruent to the key
     (increments are by the key's payload), the structure must audit,
     and a second repair must find nothing left to do (idempotence). *)
  let pmem, heap, t = delayfree_env () in
  Pmem.persist_all pmem;
  let ops = Delayfree.ops t in
  let sched = Scheduler.create ~seed:17 () in
  for tid = 0 to 3 do
    ignore
      (Scheduler.spawn sched (fun () ->
           for i = 1 to 200 do
             let key = i mod 16 in
             (* contended: all threads hit the same 16 keys *)
             ops.Map_intf.incr ~tid ~key ~by:(Int64.of_int (key + 1))
           done)
        : int)
  done;
  Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  let outcome = Scheduler.run ~crash_at_step:5_000 sched in
  Pmem.clear_step_hook pmem;
  (match outcome with
  | Scheduler.Crashed _ -> ()
  | _ -> Alcotest.fail "expected crash");
  Pmem.crash pmem Pmem.Rescue;
  Pmem.recover pmem;
  let size = (Pmem.config pmem).Config.region_size in
  let heap' = Heap.attach pmem ~base:0 ~size in
  ignore heap;
  let root = Heap.get_root heap' in
  let r1 = Delayfree.repair heap' root in
  Alcotest.(check bool) "scanned the table" true (r1.Delayfree.scanned > 0);
  Alcotest.(check bool) "structurally sound" true
    (Delayfree.check_plain heap' ~root = Ok ());
  (* Every surviving value is a sum of (key+1) increments. *)
  Delayfree.fold_plain heap' ~root
    (fun k v () ->
      Alcotest.(check bool) "value is a whole number of increments" true
        (Int64.rem v (Int64.of_int (k + 1)) = 0L))
    ();
  let r2 = Delayfree.repair heap' root in
  Alcotest.(check int) "idempotent: nothing re-executed" 0
    r2.Delayfree.reexecuted;
  Alcotest.(check int) "idempotent: nothing acked" 0 r2.Delayfree.acked;
  Alcotest.(check int) "idempotent: nothing aborted" 0 r2.Delayfree.aborted

let suite =
  ( "maps",
    [
      case "hashmap: set/get/overwrite" test_hash_set_get;
      case "hashmap: incr inserts and accumulates" test_hash_incr;
      case "hashmap: remove from chains" test_hash_remove;
      case "hashmap: fold and size" test_hash_fold_and_size;
      case "hashmap: attach to existing structure" test_hash_attach;
      case "hashmap: plain setup visible to ops" test_hash_set_plain_matches_ops;
      case "hashmap: transfer semantics" test_hash_transfer;
      case "hashmap: concurrent increments are atomic"
        test_hash_concurrent_counters;
      case "hashmap: wide multi-word values" test_hash_wide_values;
      prop_hash_vs_model;
      case "skiplist: set/get/overwrite" test_skip_set_get;
      case "skiplist: sorted traversal" test_skip_sorted_fold;
      case "skiplist: remove" test_skip_remove;
      case "skiplist: incr" test_skip_incr;
      case "skiplist: attach" test_skip_attach;
      case "skiplist: concurrent distinct inserts" test_skip_concurrent_inserts;
      case "skiplist: concurrent same-key race" test_skip_concurrent_same_key;
      case "skiplist: level distribution" test_skip_level_distribution;
      prop_skip_vs_model;
      prop_nvt_vs_model;
      prop_delayfree_vs_model;
      slow_case "hashmap: crash + rollback + GC recovery"
        test_hash_crash_recovery;
      slow_case "skiplist: crash recovery with zero mechanism"
        test_skip_crash_recovery_and_gc;
      slow_case "nvtraverse: crash recovery with zero mechanism"
        test_nvt_crash_recovery;
      slow_case "delay-free: crash + recoverable-CAS repair"
        test_delayfree_crash_repair;
    ] )
