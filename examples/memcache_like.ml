(* A persistent memcached-like string cache — the application class the
   paper's Atlas study targeted (memcached, OpenLDAP).

   Values are short strings packed into 8-word (64-byte) wide map
   values, so every SET is a genuine multi-store critical section: an
   interrupted SET would leave half-old/half-new bytes.  Under Atlas in
   TSP mode (log-only, no flushing) every SET is failure-atomic; after a
   crash the cache returns either the complete old or the complete new
   string, never a splice.

   Run with: dune exec examples/memcache_like.exe *)

module Heap = Pheap.Heap
module Rt = Atlas.Runtime
module Hashmap = Tsp_maps.Chained_hashmap
module Scheduler = Sched.Scheduler

let value_words = 8
let max_len = (value_words * 8) - 1 (* one byte holds the length *)

(* Strings <-> wide values: byte 0 of word 0 is the length. *)
let encode s =
  if String.length s > max_len then invalid_arg "value too long";
  let bytes = Bytes.make (value_words * 8) '\000' in
  Bytes.set bytes 0 (Char.chr (String.length s));
  Bytes.blit_string s 0 bytes 1 (String.length s);
  Array.init value_words (fun w -> Bytes.get_int64_le bytes (w * 8))

let decode values =
  let bytes = Bytes.create (value_words * 8) in
  Array.iteri (fun w v -> Bytes.set_int64_le bytes (w * 8) v) values;
  let len = Char.code (Bytes.get bytes 0) in
  Bytes.sub_string bytes 1 (min len max_len)

let hash_key s =
  (* Keys are strings too; fold them to the int key space. *)
  (Hashtbl.hash s * 2654435761) land max_int

let () =
  let pmem =
    Nvm.Pmem.create (Nvm.Config.with_region_size Nvm.Config.desktop (8 * 1024 * 1024))
  in
  let size = (Nvm.Pmem.config pmem).Nvm.Config.region_size in
  let log_base = size - (1024 * 1024) in
  let heap = Heap.create pmem ~base:0 ~size:log_base in
  let atlas =
    Rt.create ~mode:Atlas.Mode.Log_only ~heap ~log_base
      ~log_size:(1024 * 1024) ~num_threads:4 ()
  in
  let sched = Scheduler.create ~seed:3 () in
  let cache =
    Hashmap.create heap ~atlas ~sched ~n_buckets:1024 ~value_words ()
  in
  Nvm.Pmem.persist_all pmem;
  let flushes_after_setup = (Nvm.Pmem.stats pmem).Nvm.Stats.flushes in

  (* Four client threads SET overlapping keys with distinct, recognisable
     payloads; each payload is written in one atomic critical section. *)
  let payload tid i = Printf.sprintf "client-%d owns round %d entirely" tid i in
  for tid = 0 to 3 do
    ignore
      (Scheduler.spawn sched
         ~name:(Printf.sprintf "client-%d" tid)
         (fun () ->
           for i = 1 to 200 do
             let key = Printf.sprintf "session:%d" (i mod 40) in
             Hashmap.set_wide cache ~tid ~key:(hash_key key)
               ~values:(encode (payload tid i))
           done)
        : int)
  done;
  Nvm.Pmem.set_step_hook pmem (fun ~cost -> Scheduler.step sched ~cost);
  let outcome = Scheduler.run ~crash_at_step:60_000 sched in
  Nvm.Pmem.clear_step_hook pmem;
  (match outcome with
  | Scheduler.Crashed { at_step } ->
      Fmt.pr "crash injected at step %d, all four clients killed@." at_step
  | _ -> Fmt.pr "clients finished before the crash point@.");
  Fmt.pr "flushes issued by the clients: %d (TSP mode: none needed)@."
    ((Nvm.Pmem.stats pmem).Nvm.Stats.flushes - flushes_after_setup);

  (* Crash with TSP, recover, roll back interrupted SETs, verify. *)
  ignore
    (Tsp_core.Tsp.crash pmem ~hardware:Tsp_core.Hardware.nvdimm_server
       ~failure:Tsp_core.Failure_class.Power_outage
      : Tsp_core.Policy.verdict);
  Nvm.Pmem.recover pmem;
  let heap = Heap.attach pmem ~base:0 ~size:log_base in
  let report = Atlas.Recovery.run ~heap ~log_base () in
  ignore (Pheap.Heap_gc.collect heap);
  Fmt.pr "@.recovery: %a@.@." Atlas.Recovery.pp_report report;

  (* Every recovered value must be a COMPLETE payload from some client:
     a splice of two SETs would not parse back to a known payload. *)
  let ok = ref 0 and torn = ref 0 in
  Hashmap.fold_wide_plain heap ~root:(Heap.get_root heap)
    (fun _ values () ->
      let s = decode values in
      let well_formed =
        try Scanf.sscanf s "client-%d owns round %d entirely" (fun t i ->
            t >= 0 && t < 4 && i >= 1 && i <= 200)
        with Scanf.Scan_failure _ | End_of_file -> false
      in
      if well_formed then incr ok else incr torn)
    ();
  Fmt.pr "recovered entries: %d complete, %d torn@." !ok !torn;
  Fmt.pr
    "@.Every surviving value is one client's complete write: Atlas made \
     each 64-byte SET failure-atomic, and TSP made that free of flushes.@."
